// Unit tests of the crash-consistency layer: the snapshot/WAL codec and its
// torn-tail detection contract, the checkpoint stores (in-memory and
// file-backed), and the oracle reconstruction shared by the recovery path
// and the DST recovery invariants (see docs/DESIGN.md §10).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/checkpoint.h"

namespace sgm {
namespace {

CoordinatorCheckpoint SampleState() {
  CoordinatorCheckpoint state;
  state.epoch = 17;
  state.cycle = 230;
  state.believes_above = true;
  state.epsilon_t = 0.125;
  state.estimate = Vector{1.5, -2.25, 3.0};
  state.full_syncs = 9;
  state.partial_resolutions = 4;
  state.degraded_syncs = 2;
  state.cycles_since_sync = 3;
  state.retry_full_in = 1;
  state.next_span = 421;
  state.last_cycle_span = 418;
  state.num_sites = 2;
  state.threshold = 5.0;
  state.delta = 0.1;
  state.max_step_norm = 10.0;

  SiteCheckpoint site0;
  site0.last_known = Vector{0.5, 0.5, 0.5};
  site0.last_grant_cycle = 200;
  site0.grant_pending = true;
  site0.anchor_undelivered = true;
  site0.fd_state = FailureDetector::State::kSuspect;
  site0.fd_last_heard_cycle = 226;
  site0.fd_deaths = 1;
  site0.fd_death_cycles = {100};
  site0.fd_quarantine_until = 260;
  SiteCheckpoint site1;
  site1.last_known = Vector{-1.0, 0.0, 2.0};
  site1.fd_last_heard_cycle = 230;
  state.sites = {site0, site1};
  return state;
}

void ExpectStatesEqual(const CoordinatorCheckpoint& a,
                       const CoordinatorCheckpoint& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.cycle, b.cycle);
  EXPECT_EQ(a.believes_above, b.believes_above);
  EXPECT_EQ(a.epsilon_t, b.epsilon_t);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.full_syncs, b.full_syncs);
  EXPECT_EQ(a.partial_resolutions, b.partial_resolutions);
  EXPECT_EQ(a.degraded_syncs, b.degraded_syncs);
  EXPECT_EQ(a.cycles_since_sync, b.cycles_since_sync);
  EXPECT_EQ(a.retry_full_in, b.retry_full_in);
  EXPECT_EQ(a.next_span, b.next_span);
  EXPECT_EQ(a.last_cycle_span, b.last_cycle_span);
  EXPECT_EQ(a.num_sites, b.num_sites);
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.max_step_norm, b.max_step_norm);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].last_known, b.sites[i].last_known) << "site " << i;
    EXPECT_EQ(a.sites[i].last_grant_cycle, b.sites[i].last_grant_cycle);
    EXPECT_EQ(a.sites[i].grant_pending, b.sites[i].grant_pending);
    EXPECT_EQ(a.sites[i].anchor_undelivered, b.sites[i].anchor_undelivered);
    EXPECT_EQ(a.sites[i].fd_state, b.sites[i].fd_state);
    EXPECT_EQ(a.sites[i].fd_last_heard_cycle, b.sites[i].fd_last_heard_cycle);
    EXPECT_EQ(a.sites[i].fd_deaths, b.sites[i].fd_deaths);
    EXPECT_EQ(a.sites[i].fd_death_cycles, b.sites[i].fd_death_cycles);
    EXPECT_EQ(a.sites[i].fd_quarantine_until, b.sites[i].fd_quarantine_until);
  }
}

TEST(CheckpointCodecTest, SnapshotRoundTripPreservesEveryField) {
  const CoordinatorCheckpoint state = SampleState();
  const std::vector<std::uint8_t> wire = EncodeSnapshot(state);
  const Result<CoordinatorCheckpoint> decoded = DecodeSnapshot(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ExpectStatesEqual(state, decoded.ValueOrDie());
}

TEST(CheckpointCodecTest, SnapshotRejectsUnknownVersion) {
  std::vector<std::uint8_t> wire = EncodeSnapshot(SampleState());
  wire[0] = 0x7F;
  EXPECT_FALSE(DecodeSnapshot(wire).ok());
}

TEST(CheckpointCodecTest, SnapshotDetectsEverySingleByteCorruption) {
  const std::vector<std::uint8_t> wire = EncodeSnapshot(SampleState());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::vector<std::uint8_t> corrupted = wire;
    corrupted[i] ^= 0x40;
    EXPECT_FALSE(DecodeSnapshot(corrupted).ok())
        << "flip at byte " << i << " went undetected";
  }
}

TEST(CheckpointCodecTest, SnapshotRejectsEveryTruncationLength) {
  const std::vector<std::uint8_t> wire = EncodeSnapshot(SampleState());
  // A torn write can stop at any byte; every prefix must be rejected.
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const std::vector<std::uint8_t> torn(wire.begin(), wire.begin() + keep);
    EXPECT_FALSE(DecodeSnapshot(torn).ok()) << "prefix of " << keep;
  }
}

WalRecord SampleCommit() {
  WalRecord record;
  record.kind = WalRecord::Kind::kSyncCommit;
  record.cycle = 231;
  record.epoch = 18;
  record.next_span = 430;
  record.degraded = false;
  record.believes_above = false;
  record.epsilon_t = 0.0625;
  record.estimate = Vector{2.0, 2.0, 2.0};
  record.full_syncs = 10;
  record.degraded_syncs = 2;
  record.last_cycle_span = 425;
  return record;
}

TEST(CheckpointCodecTest, WalStreamRoundTripsBackToBackRecords) {
  WalRecord bump;
  bump.kind = WalRecord::Kind::kEpochBump;
  bump.cycle = 231;
  bump.epoch = 18;
  bump.next_span = 423;
  WalRecord grant;
  grant.kind = WalRecord::Kind::kRejoinGrant;
  grant.cycle = 233;
  grant.epoch = 18;
  grant.next_span = 431;
  grant.site = 1;

  std::vector<std::uint8_t> wal = EncodeWalRecord(bump);
  const std::vector<std::uint8_t> commit = EncodeWalRecord(SampleCommit());
  wal.insert(wal.end(), commit.begin(), commit.end());
  const std::vector<std::uint8_t> granted = EncodeWalRecord(grant);
  wal.insert(wal.end(), granted.begin(), granted.end());

  const WalDecodeResult decoded = DecodeWalStream(wal);
  EXPECT_EQ(decoded.torn_bytes, 0);
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[0].kind, WalRecord::Kind::kEpochBump);
  EXPECT_EQ(decoded.records[1].kind, WalRecord::Kind::kSyncCommit);
  EXPECT_EQ(decoded.records[1].estimate, SampleCommit().estimate);
  EXPECT_EQ(decoded.records[2].kind, WalRecord::Kind::kRejoinGrant);
  EXPECT_EQ(decoded.records[2].site, 1);
}

TEST(CheckpointCodecTest, TornWalTailPreservesCommittedPrefix) {
  std::vector<std::uint8_t> wal = EncodeWalRecord(SampleCommit());
  const std::size_t committed = wal.size();
  std::vector<std::uint8_t> second = EncodeWalRecord(SampleCommit());
  second.resize(second.size() / 2);  // the append the crash cut short
  wal.insert(wal.end(), second.begin(), second.end());

  const WalDecodeResult decoded = DecodeWalStream(wal);
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.torn_bytes, static_cast<long>(wal.size() - committed));
}

TEST(CheckpointCodecTest, WalTailCrcMismatchTerminatesTheScan) {
  std::vector<std::uint8_t> wal = EncodeWalRecord(SampleCommit());
  std::vector<std::uint8_t> second = EncodeWalRecord(SampleCommit());
  second.back() ^= 0xFF;  // body corrupted after the length made it down
  wal.insert(wal.end(), second.begin(), second.end());

  const WalDecodeResult decoded = DecodeWalStream(wal);
  EXPECT_EQ(decoded.records.size(), 1u);
  EXPECT_GT(decoded.torn_bytes, 0);
}

TEST(CheckpointCodecTest, ApplyWalRecordsCarriesAbsoluteState) {
  CoordinatorCheckpoint state = SampleState();

  WalRecord bump;
  bump.kind = WalRecord::Kind::kEpochBump;
  bump.cycle = 231;
  bump.epoch = 18;
  bump.next_span = 423;
  ApplyWalRecord(bump, &state);
  EXPECT_EQ(state.epoch, 18);
  EXPECT_EQ(state.cycle, 231);
  EXPECT_EQ(state.next_span, 423);
  EXPECT_EQ(state.full_syncs, 9);  // untouched by a bump

  ApplyWalRecord(SampleCommit(), &state);
  EXPECT_EQ(state.full_syncs, 10);
  EXPECT_EQ(state.estimate, SampleCommit().estimate);
  EXPECT_EQ(state.cycles_since_sync, 0);

  WalRecord grant;
  grant.kind = WalRecord::Kind::kRejoinGrant;
  grant.cycle = 233;
  grant.epoch = 18;
  grant.next_span = 431;
  grant.site = 1;
  ApplyWalRecord(grant, &state);
  EXPECT_TRUE(state.sites[1].grant_pending);
  EXPECT_EQ(state.sites[1].last_grant_cycle, 233);
}

// ─── Reconstruction ────────────────────────────────────────────────────────

TEST(ReconstructionTest, ReplaysWalSuffixOntoNewestSnapshot) {
  InMemoryCheckpointStore store;
  CoordinatorCheckpoint base = SampleState();
  store.PutSnapshot(EncodeSnapshot(base));
  store.AppendWal(EncodeWalRecord(SampleCommit()));

  const Result<Reconstruction> result = ReconstructCoordinatorState(store);
  ASSERT_TRUE(result.ok());
  const Reconstruction& rec = result.ValueOrDie();
  EXPECT_EQ(rec.wal_records_replayed, 1);
  EXPECT_EQ(rec.snapshots_discarded, 0);
  EXPECT_EQ(rec.torn_wal_bytes, 0);
  EXPECT_EQ(rec.state.epoch, 18);
  EXPECT_EQ(rec.state.full_syncs, 10);
}

TEST(ReconstructionTest, TornNewestSnapshotFallsBackWithoutEpochRegression) {
  InMemoryCheckpointStore store;
  CoordinatorCheckpoint base = SampleState();
  store.PutSnapshot(EncodeSnapshot(base));
  // Commit epoch 18 into the first segment's WAL, then snapshot it and tear
  // that newer snapshot's tail: recovery must fall back to the OLD snapshot
  // yet still replay the first segment's committed records — otherwise the
  // recovered epoch would regress behind frames already on the wire.
  store.AppendWal(EncodeWalRecord(SampleCommit()));
  CoordinatorCheckpoint newer = SampleState();
  newer.epoch = 18;
  newer.full_syncs = 10;
  store.PutSnapshot(EncodeSnapshot(newer));
  store.TearSnapshotTail(7);

  const Result<Reconstruction> result = ReconstructCoordinatorState(store);
  ASSERT_TRUE(result.ok());
  const Reconstruction& rec = result.ValueOrDie();
  EXPECT_EQ(rec.snapshots_discarded, 1);
  EXPECT_EQ(rec.wal_records_replayed, 1);
  EXPECT_EQ(rec.state.epoch, 18);
  EXPECT_EQ(rec.state.full_syncs, 10);
}

TEST(ReconstructionTest, TornWalTailIsCountedAndSkipped) {
  InMemoryCheckpointStore store;
  store.PutSnapshot(EncodeSnapshot(SampleState()));
  store.AppendWal(EncodeWalRecord(SampleCommit()));
  store.AppendTornWalBytes({0xDE, 0xAD, 0xBE, 0xEF});

  const Result<Reconstruction> result = ReconstructCoordinatorState(store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().wal_records_replayed, 1);
  EXPECT_EQ(result.ValueOrDie().torn_wal_bytes, 4);
}

TEST(ReconstructionTest, EmptyStoreIsNotFound) {
  InMemoryCheckpointStore store;
  const Result<Reconstruction> result = ReconstructCoordinatorState(store);
  EXPECT_FALSE(result.ok());
}

TEST(ReconstructionTest, WalRecordBeforeAnySnapshotIsNotRecoverable) {
  InMemoryCheckpointStore store;
  store.AppendWal(EncodeWalRecord(SampleCommit()));
  EXPECT_FALSE(ReconstructCoordinatorState(store).ok());
}

// ─── File-backed store ─────────────────────────────────────────────────────

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("ckpt_" + std::to_string(::testing::UnitTest::GetInstance()
                                         ->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(FileStoreTest, RoundTripsSnapshotAndWalThroughTheFilesystem) {
  {
    FileCheckpointStore store(dir_.string());
    store.PutSnapshot(EncodeSnapshot(SampleState()));
    store.AppendWal(EncodeWalRecord(SampleCommit()));
  }
  // A fresh instance (a recovering process) must find the same candidates.
  FileCheckpointStore reopened(dir_.string());
  const Result<Reconstruction> result = ReconstructCoordinatorState(reopened);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.ValueOrDie().state.epoch, 18);
  EXPECT_EQ(result.ValueOrDie().wal_records_replayed, 1);
}

TEST_F(FileStoreTest, PublishesSnapshotsAtomicallyAndRetiresOldOnes) {
  FileCheckpointStore store(dir_.string());
  store.PutSnapshot(EncodeSnapshot(SampleState()));
  store.PutSnapshot(EncodeSnapshot(SampleState()));
  store.PutSnapshot(EncodeSnapshot(SampleState()));

  int snapshots = 0, temps = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) ++temps;
    if (name.ends_with(".ckpt")) ++snapshots;
  }
  EXPECT_EQ(temps, 0) << "rename-on-write must leave no temp files";
  EXPECT_EQ(snapshots, 2) << "only the two newest snapshots are retained";
}

TEST_F(FileStoreTest, TornSnapshotFileOnDiskFallsBackToThePreviousOne) {
  FileCheckpointStore store(dir_.string());
  store.PutSnapshot(EncodeSnapshot(SampleState()));
  store.AppendWal(EncodeWalRecord(SampleCommit()));
  store.PutSnapshot(EncodeSnapshot(SampleState()));

  // Truncate the newest snapshot on disk — the filesystem lost its tail.
  std::filesystem::path newest;
  long newest_index = -1;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    long index = -1;
    if (std::sscanf(entry.path().filename().string().c_str(),
                    "snap-%ld.ckpt", &index) == 1 &&
        index > newest_index) {
      newest_index = index;
      newest = entry.path();
    }
  }
  ASSERT_GE(newest_index, 0);
  std::filesystem::resize_file(
      newest, std::filesystem::file_size(newest) / 2);

  FileCheckpointStore reopened(dir_.string());
  const Result<Reconstruction> result = ReconstructCoordinatorState(reopened);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().snapshots_discarded, 1);
  EXPECT_EQ(result.ValueOrDie().state.epoch, 18);  // WAL replay still lands
}

}  // namespace
}  // namespace sgm
