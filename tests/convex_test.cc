#include "geometry/convex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sgm {
namespace {

TEST(ConvexTest, VertexIsInHull) {
  std::vector<Vector> pts = {Vector{0.0, 0.0}, Vector{1.0, 0.0},
                             Vector{0.0, 1.0}};
  EXPECT_TRUE(HullContains(pts, Vector{1.0, 0.0}));
}

TEST(ConvexTest, CentroidIsInHull) {
  std::vector<Vector> pts = {Vector{0.0, 0.0}, Vector{1.0, 0.0},
                             Vector{0.0, 1.0}};
  EXPECT_TRUE(HullContains(pts, Vector{1.0 / 3, 1.0 / 3}));
}

TEST(ConvexTest, OutsidePointRejected) {
  std::vector<Vector> pts = {Vector{0.0, 0.0}, Vector{1.0, 0.0},
                             Vector{0.0, 1.0}};
  EXPECT_FALSE(HullContains(pts, Vector{1.0, 1.0}));
}

TEST(ConvexTest, DistanceToTriangleHull) {
  std::vector<Vector> pts = {Vector{0.0, 0.0}, Vector{2.0, 0.0},
                             Vector{0.0, 2.0}};
  // Nearest point to (2,2) on the segment x+y=2 is (1,1).
  EXPECT_NEAR(DistanceToHull(pts, Vector{2.0, 2.0}), std::sqrt(2.0), 1e-4);
  EXPECT_NEAR(DistanceToHull(pts, Vector{-1.0, 1.0}), 1.0, 1e-4);
}

TEST(ConvexTest, SinglePointHull) {
  std::vector<Vector> pts = {Vector{3.0, 4.0}};
  EXPECT_NEAR(DistanceToHull(pts, Vector{0.0, 0.0}), 5.0, 1e-9);
  EXPECT_TRUE(HullContains(pts, Vector{3.0, 4.0}));
}

TEST(ConvexTest, BarycentricWeightsAreConvex) {
  std::vector<Vector> pts = {Vector{0.0, 0.0}, Vector{4.0, 0.0},
                             Vector{0.0, 4.0}, Vector{4.0, 4.0}};
  const HullProjection proj = ProjectOntoHull(pts, Vector{2.0, 2.0});
  double sum = 0.0;
  for (double w : proj.barycentric) {
    EXPECT_GE(w, -1e-12);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(proj.distance, 0.0, 1e-4);
}

TEST(ConvexTest, NearestPointMatchesBarycentricCombination) {
  Rng rng(99);
  std::vector<Vector> pts;
  for (int i = 0; i < 6; ++i) {
    Vector p(3);
    for (int j = 0; j < 3; ++j) p[j] = rng.NextDouble(-1.0, 1.0);
    pts.push_back(p);
  }
  const Vector query{2.0, 2.0, 2.0};
  const HullProjection proj = ProjectOntoHull(pts, query);
  Vector combo(3);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    combo.Axpy(proj.barycentric[i], pts[i]);
  }
  EXPECT_NEAR(combo.DistanceTo(proj.nearest), 0.0, 1e-6);
}

// Random convex combinations must always be classified inside, and points
// pushed out along the query-to-hull direction outside.
TEST(ConvexTest, RandomConvexCombinationsInside) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vector> pts;
    const int n = 5;
    for (int i = 0; i < n; ++i) {
      Vector p(4);
      for (int j = 0; j < 4; ++j) p[j] = rng.NextDouble(-2.0, 2.0);
      pts.push_back(p);
    }
    // Random simplex weights.
    std::vector<double> w(n);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      w[i] = rng.NextExponential(1.0);
      total += w[i];
    }
    Vector combo(4);
    for (int i = 0; i < n; ++i) combo.Axpy(w[i] / total, pts[i]);
    // Frank–Wolfe can zig-zag on interior points despite away steps;
    // membership here is a sanity property, checked at 0.5% of the hull
    // diameter (~4).
    EXPECT_TRUE(HullContains(pts, combo, 2e-2));
  }
}

}  // namespace
}  // namespace sgm
