// Tests of the implementation's adaptive policies (DESIGN.md §5): the
// certified alarm cooldown, the consecutive-alarm and probe-fraction
// escalations, and the always-full-sync ablation switch — plus the safety
// property that the cooldown never masks a true crossing beyond the
// (ε, δ) guarantee.

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/cvsgm.h"
#include "gm/sgm.h"
#include "sim/network.h"
#include "test_util.h"

namespace sgm {
namespace {

JesterLikeConfig SmallJester(int n) {
  JesterLikeConfig config;
  config.num_sites = n;
  config.window = 60;
  config.seed = 4321;
  return config;
}

RunResult RunWith(const SgmOptions& options, double threshold, long cycles,
                  int n = 150) {
  JesterLikeGenerator source(SmallJester(n));
  const LInfDistance f{Vector(SmallJester(n).num_buckets)};
  SamplingGeometricMonitor monitor(f, threshold, source.max_step_norm(),
                                   options);
  monitor.set_drift_norm_cap(source.max_drift_norm());
  return Simulate(&source, &monitor, cycles);
}

TEST(CooldownTest, ReducesAlarmHandlingCost) {
  SgmOptions with;
  SgmOptions without = with;
  without.certified_cooldown = false;
  const RunResult r_with = RunWith(with, 8.0, 800);
  const RunResult r_without = RunWith(without, 8.0, 800);
  // The mute can only remove alarm-handling work.
  EXPECT_LE(r_with.metrics.local_alarm_cycles(),
            r_without.metrics.local_alarm_cycles());
  EXPECT_LE(r_with.metrics.total_messages(),
            r_without.metrics.total_messages() + 50);
}

TEST(CooldownTest, FnRateStaysBelowDeltaWithCooldown) {
  SgmOptions options;  // cooldown on by default
  const RunResult r = RunWith(options, 6.0, 1200);
  const double fn_rate =
      static_cast<double>(r.metrics.false_negative_cycles()) /
      static_cast<double>(r.cycles);
  EXPECT_LE(fn_rate, options.delta);
}

TEST(EscalationTest, ConsecutiveAlarmLimitForcesFullSync) {
  // A stream camped against the surface: two sites, one of which drifts
  // back and forth across the ball-crossing band so alarms persist.
  std::vector<std::vector<Vector>> frames;
  for (int t = 0; t < 60; ++t) {
    // Site 0 oscillates just at the surface band; site 1 fixed.
    const double x = 2.0 + 0.9 * ((t % 2 == 0) ? 1.0 : 0.8);
    frames.push_back({Vector{x, 0.0}, Vector{1.0, 0.0}});
  }
  ScriptedSource source(frames, 10.0);
  const L2Norm f;
  SgmOptions options;
  options.escalate_after_consecutive_alarms = 3;
  options.escalate_probe_fraction = 0.0;  // isolate the consecutive rule
  options.certified_cooldown = false;
  SamplingGeometricMonitor monitor(f, 2.3, source.max_step_norm(), options);
  const RunResult r = Simulate(&source, &monitor, 50);
  if (r.metrics.local_alarm_cycles() >= 3) {
    EXPECT_GE(r.metrics.full_syncs(), 1);
  }
}

TEST(EscalationTest, ProbeFractionEscalationBoundsSampleCost) {
  // With probe-fraction escalation at 1/8 N, no partial probe ships more
  // than N/8 vectors before a full sync resets drifts: compare against the
  // configuration with the rule disabled on a drift-heavy stream.
  SyntheticDriftConfig config;
  config.num_sites = 120;
  config.dim = 3;
  config.step_norm = 0.6;
  config.seed = 77;

  auto run = [&](double fraction) {
    SyntheticDriftGenerator source(config);
    const L2Norm f;
    SgmOptions options;
    options.escalate_probe_fraction = fraction;
    options.escalate_after_consecutive_alarms = 0;
    SamplingGeometricMonitor monitor(f, 2.5, source.max_step_norm(), options);
    return Simulate(&source, &monitor, 400);
  };
  const RunResult with = run(0.125);
  const RunResult without = run(0.0);
  // The rule must convert some repeated partials into full syncs.
  EXPECT_GE(with.metrics.full_syncs(), without.metrics.full_syncs());
}

TEST(EscalationTest, AlwaysFullSyncMatchesAlarmCount) {
  SgmOptions options;
  options.always_full_sync = true;
  const RunResult r = RunWith(options, 8.0, 600);
  EXPECT_EQ(r.metrics.partial_resolutions(), 0);
  EXPECT_EQ(r.metrics.full_syncs(), r.metrics.local_alarm_cycles());
}

TEST(EscalationTest, DisabledRulesReproducePaperBehaviour) {
  SgmOptions paper;
  paper.escalate_after_consecutive_alarms = 0;
  paper.escalate_probe_fraction = 0.0;
  paper.certified_cooldown = false;
  const RunResult r = RunWith(paper, 8.0, 600);
  // Pure paper behaviour: every alarm is either partially resolved or a
  // genuine ε-ball escalation.
  EXPECT_EQ(r.metrics.partial_resolutions() + r.metrics.full_syncs(),
            r.metrics.local_alarm_cycles());
}

TEST(CvsgmCooldownTest, FnRateStillBelowDelta) {
  JesterLikeGenerator source(SmallJester(150));
  const LInfDistance f{Vector(SmallJester(150).num_buckets)};
  CvsgmOptions options;
  CvSamplingMonitor monitor(f, 6.0, source.max_step_norm(), options);
  monitor.set_drift_norm_cap(source.max_drift_norm());
  const RunResult r = Simulate(&source, &monitor, 1200);
  const double fn_rate =
      static_cast<double>(r.metrics.false_negative_cycles()) /
      static_cast<double>(r.cycles);
  EXPECT_LE(fn_rate, options.delta);
}

}  // namespace
}  // namespace sgm
