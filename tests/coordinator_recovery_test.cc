// Coordinator crash/recovery at the runtime level: recovered state must
// equal the oracle reconstruction of the checkpoint store, the epoch fence
// must advance by exactly one, reconciliation must re-anchor every live
// site, and monitoring must resume (docs/DESIGN.md §10). Also covers the
// rejoin-mid-cascade interleaving: a rejoin request landing inside a probe
// or collection round must neither corrupt the HT/collection bookkeeping
// nor leave an orphan span in the trace.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "functions/l2_norm.h"
#include "obs/telemetry.h"
#include "runtime/checkpoint.h"
#include "runtime/driver.h"

namespace sgm {
namespace {

RuntimeConfig Config(InMemoryCheckpointStore* store) {
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = 10.0;
  config.checkpoint_store = store;
  config.checkpoint_interval_cycles = 5;
  return config;
}

/// Ticks until belief flips or `budget` cycles elapse.
void TickUntilBelief(RuntimeDriver* driver, const std::vector<Vector>& locals,
                     bool want, int budget = 8) {
  for (int t = 0; t < budget; ++t) {
    if (!driver->coordinator_down() &&
        driver->coordinator().BelievesAbove() == want) {
      return;
    }
    driver->Tick(locals);
  }
}

TEST(CoordinatorRecoveryTest, RecoveredStateMatchesOracleReconstruction) {
  InMemoryCheckpointStore store;
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(&store));
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);

  // Drive a few real cascades so the WAL holds commits past the last
  // periodic snapshot.
  for (auto& v : locals) v = Vector{6.0, 0.0};
  TickUntilBelief(&driver, locals, true);
  for (auto& v : locals) v = Vector{1.0, 0.0};
  TickUntilBelief(&driver, locals, false);
  ASSERT_GT(driver.coordinator().full_syncs(), 1);

  driver.CrashCoordinator();
  const Result<Reconstruction> expected = ReconstructCoordinatorState(store);
  ASSERT_TRUE(expected.ok()) << expected.status().message();
  driver.RecoverCoordinator();

  const CoordinatorCheckpoint& oracle = expected.ValueOrDie().state;
  const CoordinatorNode& coord = driver.coordinator();
  EXPECT_EQ(coord.epoch(), oracle.epoch + 1);  // the fence, nothing more
  EXPECT_EQ(coord.estimate(), oracle.estimate);
  EXPECT_EQ(coord.BelievesAbove(), oracle.believes_above);
  EXPECT_EQ(coord.epsilon_T(), oracle.epsilon_t);
  EXPECT_EQ(coord.full_syncs(), oracle.full_syncs);
  EXPECT_EQ(coord.partial_resolutions(), oracle.partial_resolutions);
  EXPECT_EQ(coord.degraded_syncs(), oracle.degraded_syncs);
  EXPECT_EQ(driver.recovery_totals().restores, 1);
  EXPECT_EQ(driver.coordinator_crashes(), 1);
}

TEST(CoordinatorRecoveryTest, RecoveryFencesEpochAndReanchorsEverySite) {
  InMemoryCheckpointStore store;
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(&store));
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);
  for (int t = 0; t < 3; ++t) driver.Tick(locals);

  driver.CrashCoordinator();
  const std::int64_t crash_epoch = driver.last_crash_epoch();
  driver.RecoverCoordinator();

  EXPECT_EQ(driver.coordinator().epoch(), crash_epoch + 1);
  // Reconciliation grants went out (and were routed) inside recovery:
  // every site already holds the fenced epoch.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(driver.site(i).epoch(), driver.coordinator().epoch());
    EXPECT_TRUE(driver.site(i).anchored());
  }
  EXPECT_EQ(driver.recovery_totals().reconcile_grants, 4);

  // Monitoring resumes: the scheduled recovery resync completes a full sync
  // and belief tracks a real crossing afterwards.
  const long syncs_after_recovery = driver.coordinator().full_syncs();
  for (auto& v : locals) v = Vector{6.0, 0.0};
  TickUntilBelief(&driver, locals, true);
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
  EXPECT_GT(driver.coordinator().full_syncs(), syncs_after_recovery);

  // The fence did its job quietly: nothing stale was ever applied.
  long stale_applied = driver.coordinator().audit().stale_epoch_applied;
  for (int i = 0; i < 4; ++i) {
    stale_applied += driver.site(i).audit().stale_epoch_applied;
  }
  EXPECT_EQ(stale_applied, 0);
}

TEST(CoordinatorRecoveryTest, ArmedCrashFiresMidCascadeAndStillRecovers) {
  InMemoryCheckpointStore store;
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(&store));
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);

  // The crash fires after two more coordinator messages — inside the
  // violation burst of the next cascade, not at a cycle boundary.
  driver.ArmCoordinatorCrash(2);
  for (auto& v : locals) v = Vector{6.0, 0.0};
  driver.Tick(locals);
  ASSERT_TRUE(driver.coordinator_down());

  const Result<Reconstruction> expected = ReconstructCoordinatorState(store);
  ASSERT_TRUE(expected.ok());
  const std::int64_t crash_epoch = driver.last_crash_epoch();
  driver.RecoverCoordinator();

  // WAL-before-wire: even a crash point between a round's epoch bump and
  // its completion leaves the committed epoch equal to the in-memory one.
  EXPECT_EQ(expected.ValueOrDie().state.epoch, crash_epoch);
  EXPECT_EQ(driver.coordinator().epoch(), crash_epoch + 1);

  // The interrupted cascade is re-derived, not lost: the recovery resync
  // completes and belief catches the crossing.
  TickUntilBelief(&driver, locals, true);
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
}

TEST(CoordinatorRecoveryTest, DownCoordinatorDropsInboundFramesUnacked) {
  InMemoryCheckpointStore store;
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(&store));
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);

  driver.CrashCoordinator();
  ASSERT_TRUE(driver.coordinator_down());
  // Sites keep observing and heartbeating into the void.
  for (int t = 0; t < 3; ++t) driver.Tick(locals);
  EXPECT_GT(driver.coordinator_down_drops(), 0);

  driver.RecoverCoordinator();
  EXPECT_FALSE(driver.coordinator_down());
  for (auto& v : locals) v = Vector{6.0, 0.0};
  TickUntilBelief(&driver, locals, true);
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
}

TEST(CoordinatorRecoveryTest, PeriodicSnapshotsHonorIntervalAndRetention) {
  InMemoryCheckpointStore store;
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(&store));  // interval = 5
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);
  for (int t = 0; t < 11; ++t) driver.Tick(locals);

  // Start() wrote the baseline, cycles 5 and 10 the periodic ones; the
  // store retains only the newest two.
  EXPECT_EQ(driver.recovery_totals().snapshots_written, 3);
  EXPECT_EQ(store.snapshot_count(), 2);
}

// ─── Rejoin arriving mid-cascade ───────────────────────────────────────────

const TraceArg* FindArg(const TraceEvent& event, const char* key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) return &arg;
  }
  return nullptr;
}

std::int64_t IntArg(const TraceEvent& event, const char* key) {
  const TraceArg* arg = FindArg(event, key);
  return arg != nullptr && arg->kind == TraceArg::Kind::kInt ? arg->int_value
                                                             : 0;
}

TEST(CoordinatorRecoveryTest, RejoinMidCascadeKeepsEstimateAndSpansIntact) {
  const L2Norm norm;
  Telemetry telemetry;
  InMemoryBus bus;
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = 10.0;
  config.telemetry = &telemetry;
  CoordinatorNode coordinator(3, norm, config, &bus);

  auto report = [&](int site, std::int64_t epoch, Vector payload) {
    RuntimeMessage m;
    m.type = RuntimeMessage::Type::kStateReport;
    m.from = site;
    m.to = kCoordinatorId;
    m.epoch = epoch;
    m.payload = std::move(payload);
    coordinator.OnMessage(m);
  };

  // Initialization sync at epoch 1.
  coordinator.Start();
  for (int site = 0; site < 3; ++site) report(site, 1, Vector{1.0, 0.0});
  ASSERT_EQ(coordinator.full_syncs(), 1);
  ASSERT_EQ(coordinator.estimate(), (Vector{1.0, 0.0}));

  // A local violation opens a probe round (epoch 2)…
  RuntimeMessage violation;
  violation.type = RuntimeMessage::Type::kLocalViolation;
  violation.from = 0;
  violation.to = kCoordinatorId;
  violation.epoch = 1;
  coordinator.OnMessage(violation);

  // …and a rejoin request lands right in the middle of it, between drift
  // reports. The grant is issued immediately; the probe must not see it.
  RuntimeMessage drift;
  drift.type = RuntimeMessage::Type::kDriftReport;
  drift.to = kCoordinatorId;
  drift.epoch = 2;
  drift.scalar = 1.0;  // inclusion probability
  drift.payload = Vector{5.0, 0.0};
  drift.from = 0;
  coordinator.OnMessage(drift);

  RuntimeMessage rejoin;
  rejoin.type = RuntimeMessage::Type::kRejoinRequest;
  rejoin.from = 1;
  rejoin.to = kCoordinatorId;
  rejoin.epoch = 1;  // a site that fell behind carries a stale epoch
  coordinator.OnMessage(rejoin);
  EXPECT_EQ(coordinator.audit().rejoins_granted, 1);

  drift.from = 1;
  coordinator.OnMessage(drift);
  drift.from = 2;
  coordinator.OnMessage(drift);
  coordinator.OnQuiescent();  // HT vets the alarm: v̂ = {6,0} ⇒ escalate

  // The escalation opened a full collection (epoch 3); a second rejoin
  // request interleaves with the collection's state reports.
  report(0, 3, Vector{6.0, 0.0});
  rejoin.from = 2;
  rejoin.epoch = 2;
  coordinator.OnMessage(rejoin);
  EXPECT_EQ(coordinator.audit().rejoins_granted, 2);
  report(1, 3, Vector{6.0, 0.0});
  report(2, 3, Vector{6.0, 0.0});

  // The collection completed exactly once, over exactly the three reports:
  // the interleaved grants neither double-counted a site nor perturbed the
  // average (an HT-corruption would show up as estimate ≠ {6,0}).
  EXPECT_EQ(coordinator.full_syncs(), 2);
  EXPECT_EQ(coordinator.estimate(), (Vector{6.0, 0.0}));
  EXPECT_TRUE(coordinator.BelievesAbove());
  EXPECT_EQ(coordinator.audit().stale_epoch_applied, 0);

  // Span-tree integrity: every parent referenced in the trace is a known
  // span, and rejoin grants are their own roots — no orphans either way.
  std::set<std::int64_t> spans;
  std::map<std::int64_t, std::int64_t> parent_of;
  std::set<std::int64_t> grant_spans;
  for (const TraceEvent& event : telemetry.trace.events()) {
    const std::int64_t span = IntArg(event, "span");
    if (span == 0) continue;
    spans.insert(span);
    const std::int64_t parent = IntArg(event, "parent");
    if (parent != 0) parent_of[span] = parent;
    if (event.name == "rejoin_grant") grant_spans.insert(span);
  }
  ASSERT_EQ(grant_spans.size(), 2u);
  for (const auto& [span, parent] : parent_of) {
    EXPECT_TRUE(spans.count(parent))
        << "span " << span << " references unknown parent " << parent;
  }
  for (const std::int64_t grant : grant_spans) {
    EXPECT_EQ(parent_of.count(grant), 0u)
        << "grant span " << grant << " must be a root, not a cascade child";
  }
}

}  // namespace
}  // namespace sgm
