#include "data/csv_stream.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace sgm {
namespace {

/// Writes `content` to a unique temp file and returns its path.
class TempCsv {
 public:
  explicit TempCsv(const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/sgm_csv_test_" +
            std::to_string(counter++) + ".csv";
    std::ofstream file(path_);
    file << content;
  }
  ~TempCsv() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CsvVectorStreamTest, LoadsWellFormedFile) {
  TempCsv csv(
      "# cycle,site,x0,x1\n"
      "0,0,1.0,2.0\n"
      "0,1,3.0,4.0\n"
      "1,0,1.5,2.5\n"
      "1,1,3.5,4.5\n");
  auto result = CsvVectorStream::Load(csv.path());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CsvVectorStream stream = std::move(result).ValueOrDie();
  EXPECT_EQ(stream.num_sites(), 2);
  EXPECT_EQ(stream.dim(), 2u);
  EXPECT_EQ(stream.num_cycles(), 2);

  std::vector<Vector> locals;
  stream.Advance(&locals);
  EXPECT_EQ(locals[0], (Vector{1.0, 2.0}));
  EXPECT_EQ(locals[1], (Vector{3.0, 4.0}));
  stream.Advance(&locals);
  EXPECT_EQ(locals[0], (Vector{1.5, 2.5}));
}

TEST(CsvVectorStreamTest, RepeatsLastFrameAfterEnd) {
  TempCsv csv("0,0,1.0\n1,0,9.0\n");
  CsvVectorStream stream =
      std::move(CsvVectorStream::Load(csv.path())).ValueOrDie();
  std::vector<Vector> locals;
  stream.Advance(&locals);
  stream.Advance(&locals);
  stream.Advance(&locals);  // past the end
  EXPECT_EQ(locals[0], (Vector{9.0}));
}

TEST(CsvVectorStreamTest, ComputesMaxStep) {
  TempCsv csv("0,0,0.0\n1,0,3.0\n2,0,4.0\n");
  CsvVectorStream stream =
      std::move(CsvVectorStream::Load(csv.path())).ValueOrDie();
  EXPECT_DOUBLE_EQ(stream.max_step_norm(), 3.0);
}

TEST(CsvVectorStreamTest, MissingFileIsNotFound) {
  auto result = CsvVectorStream::Load("/nonexistent/definitely_missing.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvVectorStreamTest, RejectsInconsistentDimensions) {
  TempCsv csv("0,0,1.0,2.0\n0,1,3.0\n");
  auto result = CsvVectorStream::Load(csv.path());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvVectorStreamTest, RejectsMissingSiteCoverage) {
  TempCsv csv("0,0,1.0\n0,1,2.0\n1,0,3.0\n");  // cycle 1 misses site 1
  auto result = CsvVectorStream::Load(csv.path());
  EXPECT_FALSE(result.ok());
}

TEST(CsvVectorStreamTest, RejectsDuplicateCell) {
  TempCsv csv("0,0,1.0\n0,0,2.0\n");
  auto result = CsvVectorStream::Load(csv.path());
  EXPECT_FALSE(result.ok());
}

TEST(CsvVectorStreamTest, RejectsGarbageNumbers) {
  TempCsv csv("0,0,banana\n");
  auto result = CsvVectorStream::Load(csv.path());
  EXPECT_FALSE(result.ok());
}

TEST(CsvEventStreamTest, BuildsWindowedCounts) {
  TempCsv csv(
      "# site,category\n"
      "0,0\n0,1\n0,1\n"
      "1,2\n1,2\n");
  auto result = CsvEventStream::Load(csv.path(), /*num_sites=*/2,
                                     /*window=*/2, /*dim=*/3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CsvEventStream stream = std::move(result).ValueOrDie();

  std::vector<Vector> locals;
  stream.Advance(&locals);  // site0: [0], site1: [2]
  EXPECT_EQ(locals[0], (Vector{1.0, 0.0, 0.0}));
  EXPECT_EQ(locals[1], (Vector{0.0, 0.0, 1.0}));
  stream.Advance(&locals);  // site0: [0,1], site1: [2,2]
  EXPECT_EQ(locals[0], (Vector{1.0, 1.0, 0.0}));
  EXPECT_EQ(locals[1], (Vector{0.0, 0.0, 2.0}));
  stream.Advance(&locals);  // site0 window slides to [1,1]; site1 replays
  EXPECT_EQ(locals[0], (Vector{0.0, 2.0, 0.0}));
  EXPECT_EQ(locals[1], (Vector{0.0, 0.0, 2.0}));
}

TEST(CsvEventStreamTest, UncountedPlaceholderAllowed) {
  TempCsv csv("0,3\n");  // category == dim: occupies a slot, counts nowhere
  auto result = CsvEventStream::Load(csv.path(), 1, 2, 3);
  ASSERT_TRUE(result.ok());
  CsvEventStream stream = std::move(result).ValueOrDie();
  std::vector<Vector> locals;
  stream.Advance(&locals);
  EXPECT_EQ(locals[0], (Vector{0.0, 0.0, 0.0}));
}

TEST(CsvEventStreamTest, RejectsOutOfRange) {
  TempCsv bad_site("5,0\n");
  EXPECT_FALSE(CsvEventStream::Load(bad_site.path(), 2, 2, 3).ok());
  TempCsv bad_category("0,7\n");
  EXPECT_FALSE(CsvEventStream::Load(bad_category.path(), 2, 2, 3).ok());
}

TEST(CsvEventStreamTest, DriftCapMatchesWindow) {
  TempCsv csv("0,0\n");
  CsvEventStream stream =
      std::move(CsvEventStream::Load(csv.path(), 1, 50, 3)).ValueOrDie();
  EXPECT_NEAR(stream.max_drift_norm(), std::sqrt(2.0) * 50.0, 1e-12);
}

}  // namespace
}  // namespace sgm
