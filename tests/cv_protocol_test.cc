// Behavioural tests of CVGM and CVSGM (Section 4).

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/cvgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/network.h"
#include "test_util.h"

namespace sgm {
namespace {

TEST(CvgmTest, ZoneBuiltAroundEstimate) {
  std::vector<std::vector<Vector>> frames(3, {Vector{1.0, 0.0},
                                              Vector{1.0, 0.0}});
  ScriptedSource source(std::move(frames), 1.0);
  L2Norm f(false);
  ConvexSafeZoneMonitor cvgm(f, 5.0, source.max_step_norm());
  Simulate(&source, &cvgm, 2);
  ASSERT_NE(cvgm.zone(), nullptr);
  // e = (1, 0), surface ‖v‖ = 5 → max inscribed ball radius 4.
  EXPECT_NEAR(cvgm.zone()->SignedDistance(Vector{1.0, 0.0}), -4.0, 1e-9);
}

TEST(CvgmTest, StaysSilentInsideZone) {
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  frames.push_back({Vector{2.0, 0.0}, Vector{0.0, 1.0}});  // well inside
  ScriptedSource source(std::move(frames), 5.0);
  L2Norm f(false);
  ConvexSafeZoneMonitor cvgm(f, 8.0, source.max_step_norm());
  const RunResult result = Simulate(&source, &cvgm, 2);
  EXPECT_EQ(result.metrics.full_syncs(), 0);
}

TEST(CvgmTest, ZoneExitTriggersSync) {
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  frames.push_back({Vector{6.0, 0.0}, Vector{1.0, 0.0}});  // site 0 leaves C
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  ConvexSafeZoneMonitor cvgm(f, 4.0, source.max_step_norm());
  const RunResult result = Simulate(&source, &cvgm, 2);
  EXPECT_GE(result.metrics.full_syncs(), 1);
}

// CV's selling point: a hull-crossing pattern that fools GM's balls does not
// fool the safe zone, because the exact hull is monitored.
TEST(CvgmTest, FewerFalsePositivesThanGmOnSymmetricDrift) {
  // Two sites drift symmetrically around a stationary average sitting well
  // inside the admissible region.
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{2.0, 0.0}, Vector{2.0, 0.0}});
  for (int t = 1; t < 10; ++t) {
    const double s = 1.2 * t / 10.0;
    frames.push_back({Vector{2.0 + s, 0.0}, Vector{2.0 - s, 0.0}});
  }
  L2Norm f(false);
  const double T = 3.4;

  ScriptedSource s1(frames, 10.0), s2(frames, 10.0);
  GeometricMonitor gm(f, T, 10.0);
  ConvexSafeZoneMonitor cvgm(f, T, 10.0);
  const RunResult r_gm = Simulate(&s1, &gm, 9);
  const RunResult r_cv = Simulate(&s2, &cvgm, 9);
  EXPECT_LE(r_cv.metrics.false_positives(), r_gm.metrics.false_positives());
}

TEST(CvgmTest, NoFalseNegativesOnSyntheticStream) {
  SyntheticDriftConfig config;
  config.num_sites = 20;
  config.dim = 3;
  config.seed = 808;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  ConvexSafeZoneMonitor cvgm(f, 2.5, source.max_step_norm());
  const RunResult result = Simulate(&source, &cvgm, 300);
  EXPECT_EQ(result.metrics.false_negative_cycles(), 0);
}

// ------------------------------------------------------------------ CVSGM --

CvsgmOptions DefaultCvsgm(double delta = 0.1) {
  CvsgmOptions options;
  options.delta = delta;
  return options;
}

TEST(CvsgmTest, QuietStreamOnlyInitCost) {
  std::vector<std::vector<Vector>> frames(
      8, {Vector{1.0, 0.0}, Vector{0.5, 0.5}});
  ScriptedSource source(std::move(frames), 1.0);
  L2Norm f(false);
  CvSamplingMonitor cvsgm(f, 10.0, source.max_step_norm(), DefaultCvsgm());
  const RunResult result = Simulate(&source, &cvsgm, 7);
  EXPECT_EQ(result.metrics.total_messages(), 3);
  EXPECT_EQ(result.metrics.full_syncs(), 0);
}

TEST(CvsgmTest, OneDResolutionOnSymmetricDrift) {
  // Force the zone boundary to be crossed by sampled sites while the true
  // average stays put: CVSGM must resolve with scalars, not vectors.
  SyntheticDriftConfig config;
  config.num_sites = 300;
  config.dim = 3;
  config.step_norm = 0.5;
  config.global_amplitude = 0.0;  // no shared drift: average barely moves
  config.seed = 99;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  CvSamplingMonitor cvsgm(f, 2.2, source.max_step_norm(), DefaultCvsgm());
  const RunResult result = Simulate(&source, &cvsgm, 500);
  // Alarms happen (sites random-walk out of the zone); the 1-d machinery
  // must resolve a meaningful share of them with scalars only. Full syncs
  // still occur — once *every* site has wandered outside C the exact D_C is
  // legitimately positive even though the average stayed put (this is CV's
  // scalability ceiling, Section 4) — but cheap resolutions must dominate.
  const long cheap = result.metrics.partial_resolutions() +
                     result.metrics.one_d_resolutions();
  EXPECT_GT(cheap, 0);
  EXPECT_GT(cheap, result.metrics.full_syncs());
}

TEST(CvsgmTest, FnRateBelowDelta) {
  SyntheticDriftConfig config;
  config.num_sites = 200;
  config.dim = 3;
  config.seed = 123;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  CvSamplingMonitor cvsgm(f, 2.6, source.max_step_norm(), DefaultCvsgm(0.1));
  const RunResult result = Simulate(&source, &cvsgm, 600);
  const double fn_rate = static_cast<double>(
                             result.metrics.false_negative_cycles()) /
                         static_cast<double>(result.cycles);
  EXPECT_LE(fn_rate, 0.1);
}

// The unidimensional mapping's byte claim: on a higher-dimensional workload
// CVSGM moves fewer bytes than SGM because FPs resolve with scalars.
TEST(CvsgmTest, FewerBytesThanSgmOnHistogramWorkload) {
  JesterLikeConfig config;
  config.num_sites = 150;
  config.window = 60;
  config.num_buckets = 16;
  config.seed = 7;

  LInfDistance f(Vector(16));
  const double T = 3.0;

  JesterLikeGenerator s1(config), s2(config);
  SgmOptions sgm_options;
  sgm_options.delta = 0.1;
  SamplingGeometricMonitor sgm(f, T, s1.max_step_norm(), sgm_options);
  CvSamplingMonitor cvsgm(f, T, s2.max_step_norm(), DefaultCvsgm(0.1));
  const RunResult r_sgm = Simulate(&s1, &sgm, 500);
  const RunResult r_cv = Simulate(&s2, &cvsgm, 500);
  // Bytes may legitimately tie when no alarms fire; require alarms first.
  ASSERT_GT(r_sgm.metrics.local_alarm_cycles() +
                r_cv.metrics.local_alarm_cycles(),
            0);
  EXPECT_LT(r_cv.metrics.total_bytes(), 1.5 * r_sgm.metrics.total_bytes());
}

TEST(CvsgmTest, ZoneShrinkValidated) {
  L2Norm f(false);
  CvsgmOptions options;
  options.cv.zone_shrink = 0.5;
  CvSamplingMonitor cvsgm(f, 5.0, 1.0, options);
  std::vector<std::vector<Vector>> frames(2, {Vector{1.0, 0.0}});
  ScriptedSource source(std::move(frames), 1.0);
  Simulate(&source, &cvsgm, 1);
  // Radius = 0.5 · (5 − 1) = 2.
  EXPECT_NEAR(cvsgm.zone()->SignedDistance(Vector{1.0, 0.0}), -2.0, 1e-9);
}

}  // namespace
}  // namespace sgm
