#include "geometry/ellipsoid.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sgm {
namespace {

TEST(EllipsoidTest, SphereSpecialCase) {
  // Equal semi-axes reduce to a ball. Exactly at the center the secular
  // solve hits a floating-point cancellation (t → −a²), costing ~1e-4 of
  // accuracy; off-center points are ~1e-8 exact.
  Ellipsoid e(Vector{1.0, 2.0}, Vector{3.0, 3.0});
  EXPECT_NEAR(e.SignedDistance(Vector{1.0, 2.0}), -3.0, 1e-3);
  EXPECT_NEAR(e.SignedDistance(Vector{5.0, 2.0}), 1.0, 1e-8);
  EXPECT_NEAR(e.SignedDistance(Vector{4.0, 2.0}), 0.0, 1e-8);
}

TEST(EllipsoidTest, AxisPointsExact) {
  Ellipsoid e(Vector{0.0, 0.0}, Vector{4.0, 1.0});
  // Along the major axis: boundary at x = 4.
  EXPECT_NEAR(e.SignedDistance(Vector{6.0, 0.0}), 2.0, 1e-8);
  // Along the minor axis: boundary at y = 1.
  EXPECT_NEAR(e.SignedDistance(Vector{0.0, 3.0}), 2.0, 1e-8);
}

TEST(EllipsoidTest, ContainsAgreesWithLevel) {
  Ellipsoid e(Vector{0.0, 0.0, 0.0}, Vector{2.0, 1.0, 0.5});
  EXPECT_TRUE(e.Contains(Vector{1.0, 0.5, 0.0}));
  EXPECT_FALSE(e.Contains(Vector{2.0, 1.0, 0.5}));
  EXPECT_TRUE(e.Contains(Vector{2.0, 0.0, 0.0}));  // on the boundary
}

TEST(EllipsoidTest, ProjectionLandsOnBoundary) {
  Ellipsoid e(Vector{1.0, -1.0, 0.0}, Vector{3.0, 0.7, 1.5});
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    Vector p(3);
    for (int j = 0; j < 3; ++j) p[j] = rng.NextDouble(-6.0, 6.0);
    const Vector projection = e.Project(p);
    EXPECT_NEAR(e.LevelValue(projection), 1.0, 1e-6) << "trial " << trial;
  }
}

TEST(EllipsoidTest, ProjectionIsNearestBoundaryPoint) {
  // The secular-equation projection must beat random boundary samples.
  Ellipsoid e(Vector{0.0, 0.0}, Vector{5.0, 1.0});
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    Vector p(2);
    p[0] = rng.NextDouble(-8.0, 8.0);
    p[1] = rng.NextDouble(-4.0, 4.0);
    const double distance = std::abs(e.SignedDistance(p));
    for (int s = 0; s < 100; ++s) {
      const double angle = rng.NextDouble(0.0, 2.0 * M_PI);
      const Vector boundary{5.0 * std::cos(angle), 1.0 * std::sin(angle)};
      EXPECT_LE(distance, p.DistanceTo(boundary) + 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(EllipsoidTest, DegenerateAxisComponentHandled) {
  // Interior point with zero component on the short axis: the classic
  // secular-equation edge case.
  Ellipsoid e(Vector{0.0, 0.0}, Vector{4.0, 1.0});
  const double sd = e.SignedDistance(Vector{0.5, 0.0});
  EXPECT_LT(sd, 0.0);
  EXPECT_GT(sd, -1.01);  // the short axis is ≤ 1 away
}

TEST(EllipsoidSafeZoneTest, SignedDistanceDelegates) {
  EllipsoidSafeZone zone(
      Ellipsoid(Vector{0.0, 0.0}, Vector{2.0, 1.0}));
  EXPECT_TRUE(zone.Contains(Vector{1.0, 0.0}));
  EXPECT_FALSE(zone.Contains(Vector{0.0, 2.0}));
  EXPECT_LT(zone.SignedDistance(Vector{0.0, 0.0}), 0.0);
  EXPECT_FALSE(zone.ToString().empty());
}

// Lemma-4 compatibility: negative mean signed distance implies the mean is
// inside — exercised with the ellipsoidal zone.
TEST(EllipsoidSafeZoneTest, Lemma4HoldsForEllipsoids) {
  EllipsoidSafeZone zone(
      Ellipsoid(Vector{0.0, 0.0, 0.0}, Vector{2.0, 1.5, 3.0}));
  Rng rng(35);
  int exercised = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Vector> points;
    const int n = 3 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < n; ++i) {
      Vector p(3);
      for (int j = 0; j < 3; ++j) p[j] = rng.NextDouble(-1.6, 1.6);
      points.push_back(p);
    }
    const SignedDistanceSummary summary =
        SummarizeSignedDistances(zone, points);
    if (summary.average < 0.0) {
      ++exercised;
      EXPECT_TRUE(zone.Contains(Mean(points))) << "trial " << trial;
    }
  }
  EXPECT_GT(exercised, 30);
}

}  // namespace
}  // namespace sgm
