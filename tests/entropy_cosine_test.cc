// Tests of the entropy and cosine-similarity monitored functions
// (the DDoS-detection and sensor-outlier-detection GM applications).

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "functions/cosine_similarity.h"
#include "functions/entropy.h"

namespace sgm {
namespace {

// --------------------------------------------------------------- entropy --

TEST(EntropyTest, UniformMaximizes) {
  Entropy h(0.5);
  const double uniform = h.Value(Vector{10.0, 10.0, 10.0, 10.0});
  const double skewed = h.Value(Vector{37.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(uniform, std::log(4.0), 1e-9);
  EXPECT_LT(skewed, uniform);
}

TEST(EntropyTest, NonNegativeAndBounded) {
  Entropy h;
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Vector v(6);
    for (int j = 0; j < 6; ++j) v[j] = rng.NextDouble(0.0, 50.0);
    const double value = h.Value(v);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, std::log(6.0) + 1e-9);
  }
}

TEST(EntropyTest, ScaleInvariantValue) {
  Entropy h(1e-9);  // negligible smoothing for the invariance check
  const Vector v{4.0, 2.0, 2.0};
  EXPECT_NEAR(h.Value(v), h.Value(v * 10.0), 1e-6);
}

TEST(EntropyTest, GradientMatchesNumeric) {
  Entropy h(0.5);
  const Vector v{8.0, 3.0, 1.0, 5.0};
  const Vector analytic = h.Gradient(v);
  Vector probe = v;
  for (int j = 0; j < 4; ++j) {
    const double step = 1e-6;
    probe[j] = v[j] + step;
    const double fp = h.Value(probe);
    probe[j] = v[j] - step;
    const double fm = h.Value(probe);
    probe[j] = v[j];
    EXPECT_NEAR(analytic[j], (fp - fm) / (2 * step), 1e-5) << "dim " << j;
  }
}

TEST(EntropyTest, GradientZeroAtUniform) {
  Entropy h(0.5);
  const Vector grad = h.Gradient(Vector{7.0, 7.0, 7.0});
  EXPECT_NEAR(grad.Norm(), 0.0, 1e-12);
}

TEST(EntropyTest, EnclosureCoversSamples) {
  Entropy h;
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    Vector c(5);
    for (int j = 0; j < 5; ++j) c[j] = rng.NextDouble(1.0, 20.0);
    const Ball ball(c, rng.NextDouble(0.1, 2.0));
    const Interval range = h.RangeOverBall(ball);
    for (int s = 0; s < 20; ++s) {
      Vector direction(5);
      for (int j = 0; j < 5; ++j) direction[j] = rng.NextGaussian();
      Vector p = c;
      p.Axpy(ball.radius() * rng.NextDouble() / direction.Norm(), direction);
      const double value = h.Value(p);
      EXPECT_GE(value, range.lo - 1e-7);
      EXPECT_LE(value, range.hi + 1e-7);
    }
  }
}

// ---------------------------------------------------------------- cosine --

TEST(CosineTest, ParallelHalvesGiveOne) {
  CosineSimilarity cos(4);
  EXPECT_NEAR(cos.Value(Vector{1.0, 2.0, 2.0, 4.0}), 1.0, 1e-9);
}

TEST(CosineTest, OrthogonalHalvesGiveZero) {
  CosineSimilarity cos(4);
  EXPECT_NEAR(cos.Value(Vector{1.0, 0.0, 0.0, 1.0}), 0.0, 1e-12);
}

TEST(CosineTest, OppositeHalvesGiveMinusOne) {
  CosineSimilarity cos(2);
  EXPECT_NEAR(cos.Value(Vector{3.0, -3.0}), -1.0, 1e-9);
}

TEST(CosineTest, BoundedInUnitInterval) {
  CosineSimilarity cos(6);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Vector v(6);
    for (int j = 0; j < 6; ++j) v[j] = rng.NextDouble(-4.0, 4.0);
    const double value = cos.Value(v);
    EXPECT_GE(value, -1.0 - 1e-9);
    EXPECT_LE(value, 1.0 + 1e-9);
  }
}

TEST(CosineTest, GradientMatchesNumeric) {
  CosineSimilarity cos(4);
  const Vector v{1.0, 2.0, -1.5, 0.5};
  const Vector analytic = cos.Gradient(v);
  Vector probe = v;
  for (int j = 0; j < 4; ++j) {
    const double step = 1e-6;
    probe[j] = v[j] + step;
    const double fp = cos.Value(probe);
    probe[j] = v[j] - step;
    const double fm = cos.Value(probe);
    probe[j] = v[j];
    EXPECT_NEAR(analytic[j], (fp - fm) / (2 * step), 1e-5) << "dim " << j;
  }
}

TEST(CosineTest, ScaleInvariance) {
  CosineSimilarity cos(4);
  const Vector v{1.0, 2.0, 0.5, -1.0};
  EXPECT_NEAR(cos.Value(v), cos.Value(v * 5.0), 1e-9);
  double degree = 1.0;
  EXPECT_TRUE(cos.HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 0.0);
}

TEST(CosineTest, EnclosureRespectsGlobalBounds) {
  CosineSimilarity cos(4);
  const Ball huge(Vector{1.0, 1.0, 1.0, 1.0}, 100.0);
  const Interval range = cos.RangeOverBall(huge);
  EXPECT_GE(range.lo, -1.0);
  EXPECT_LE(range.hi, 1.0);
}

TEST(CosineTest, CloneWorks) {
  CosineSimilarity cos(4);
  auto clone = cos.Clone();
  EXPECT_EQ(clone->name(), "cosine_similarity");
  EXPECT_NEAR(clone->Value(Vector{1.0, 0.0, 1.0, 0.0}), 1.0, 1e-9);
}

}  // namespace
}  // namespace sgm
