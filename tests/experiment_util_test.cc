#include "sim/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Num(1.5), "1.5");
  EXPECT_EQ(TablePrinter::Num(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::Int(42), "42");
  EXPECT_EQ(TablePrinter::Int(-7), "-7");
}

TEST(TablePrinterTest, AcceptsMatchingRows) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  table.Print();  // must not crash; output inspected in bench logs
}

TEST(ScaledCyclesTest, DefaultIsIdentity) {
  unsetenv("SGM_BENCH_SCALE");
  EXPECT_EQ(ScaledCycles(100), 100);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
}

TEST(ScaledCyclesTest, EnvironmentScales) {
  setenv("SGM_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 2.5);
  EXPECT_EQ(ScaledCycles(100), 250);
  unsetenv("SGM_BENCH_SCALE");
}

TEST(ScaledCyclesTest, GarbageEnvironmentFallsBack) {
  setenv("SGM_BENCH_SCALE", "banana", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  setenv("SGM_BENCH_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  unsetenv("SGM_BENCH_SCALE");
}

TEST(ScaledCyclesTest, NeverBelowOne) {
  setenv("SGM_BENCH_SCALE", "0.0001", 1);
  EXPECT_GE(ScaledCycles(100), 1);
  unsetenv("SGM_BENCH_SCALE");
}

}  // namespace
}  // namespace sgm
