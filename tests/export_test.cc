// Windowed time-series export and the quantile/Prometheus surfaces of the
// metric registry: Histogram::Quantile interpolation, p50/p95/p99 in the
// JSON snapshot, the Prometheus text exposition, and TimeSeriesExporter's
// per-cycle records (cumulative/delta/window aggregates, idempotent
// sampling, deterministic JSONL).

#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metric_registry.h"
#include "obs/telemetry.h"

namespace sgm {
namespace {

TEST(HistogramQuantileTest, InterpolatesWithinTheHoldingBucket) {
  Histogram histogram({1.0, 2.0, 4.0});
  // 4 observations in (1, 2]: the bucket holds ranks 1..4 of 4.
  histogram.Observe(1.5);
  histogram.Observe(1.5);
  histogram.Observe(1.5);
  histogram.Observe(1.5);
  // p50 → rank 2 of 4 inside (1, 2] → 1 + (2-1)·(2/4) = 1.5.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1.5);
  // p100 → upper edge of the holding bucket.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 2.0);
}

TEST(HistogramQuantileTest, EmptyReportsZeroAndOverflowClampsToLastEdge) {
  Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  histogram.Observe(100.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 2.0);
}

TEST(HistogramQuantileTest, SpreadAcrossBucketsOrdersQuantiles) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 9; ++i) histogram.Observe(3.0);
  histogram.Observe(7.0);
  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_LE(p50, 1.0);
  EXPECT_GT(p95, 2.0);
  EXPECT_LE(p95, 4.0);
  // Rank 99 of 100 sits exactly at the (2,4] bucket's upper edge.
  EXPECT_GE(p99, 4.0);
  EXPECT_LE(p99, 8.0);
}

TEST(MetricRegistryJsonTest, HistogramsCarryQuantileFields) {
  MetricRegistry registry;
  Histogram* histogram = registry.GetHistogram("x.latency", {1.0, 2.0});
  histogram->Observe(1.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(PrometheusTest, WritesCountersGaugesAndCumulativeHistograms) {
  MetricRegistry registry;
  registry.GetCounter("transport.retransmissions")->Increment(3);
  registry.GetGauge("failure.live_count")->Set(24.0);
  Histogram* histogram = registry.GetHistogram("site.ball_test_ns",
                                               {1.0, 2.0});
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(9.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();

  // Names: sgm_ prefix, dots to underscores, counters end in _total.
  EXPECT_NE(text.find("# TYPE sgm_transport_retransmissions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_transport_retransmissions_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sgm_failure_live_count gauge"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_failure_live_count 24"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf = count.
  EXPECT_NE(text.find("sgm_site_ball_test_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_site_ball_test_ns_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_site_ball_test_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_site_ball_test_ns_count 3"), std::string::npos);
}

TEST(PrometheusTest, ExpositionGrammarRoundTrip) {
  // Every non-comment line of the exposition must parse as
  //   <name>{labels}? <value>
  // with a name matching [a-zA-Z_:][a-zA-Z0-9_:]*, and every family must
  // be announced by a # HELP line followed by a # TYPE line — the grammar
  // a Prometheus scraper actually enforces on /metrics.
  MetricRegistry registry;
  registry.GetCounter("transport.paper_messages")->Increment(7);
  registry.GetGauge("coordinator.epoch")->Set(3.0);
  registry.GetHistogram("site.ball_test_ns", {1.0, 4.0})->Observe(2.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  std::istringstream lines(out.str());
  std::string line;
  std::string last_help_family;
  int samples = 0;
  auto is_name_char = [](char c, bool first) {
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    return first ? alpha : (alpha || (c >= '0' && c <= '9'));
  };
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      last_help_family = line.substr(7, line.find(' ', 7) - 7);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      // TYPE follows HELP for the same family.
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(family, last_help_family) << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    std::size_t i = 0;
    ASSERT_TRUE(is_name_char(line[0], true)) << line;
    while (i < line.size() && is_name_char(line[i], false)) ++i;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    // The remainder must be a number.
    char* end = nullptr;
    std::strtod(line.c_str() + i + 1, &end);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GE(samples, 6);  // counter + gauge + 3 buckets + sum + count
}

TEST(PrometheusTest, HelpTextAndEscapingAreWellFormed) {
  // Known families get their catalog description; unknown prefixes still
  // get a HELP line rather than silence.
  EXPECT_FALSE(PrometheusHelpText("transport.paper_messages").empty());
  EXPECT_FALSE(PrometheusHelpText("never.heard.of.it").empty());

  EXPECT_EQ(PrometheusMetricName("transport.paper_bytes"),
            "sgm_transport_paper_bytes");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\"\\now"),
            "say \\\"hi\\\"\\\\now");
}

TEST(AtomicWriteFileTest, PublishesAtomicallyAndCleansUpItsTemp) {
  const std::string path = ::testing::TempDir() + "/atomic_out.json";
  ASSERT_TRUE(
      AtomicWriteFile(path, [](std::ostream& out) { out << "{\"v\":1}"; })
          .ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"v\":1}");
  // The temp staging file must not survive a successful publish.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, StaleTempFromACrashIsRemovedOnStart) {
  // Simulates the crash-between-write-and-rename window: the daemon died
  // leaving <out>.tmp behind, and the next start must clear it so the
  // atomic-publish invariant (readers only ever see complete files) holds.
  const std::string path = ::testing::TempDir() + "/crashed_out.json";
  {
    std::ofstream stale(path + ".tmp");
    stale << "{\"half\":";  // truncated mid-write
  }
  EXPECT_TRUE(RemoveStaleTempFile(path));
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // Idempotent: nothing left to remove.
  EXPECT_FALSE(RemoveStaleTempFile(path));
}

TEST(TimeSeriesExporterTest, TracksCumulativeDeltaAndWindowAggregates) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c.msgs");
  Gauge* gauge = registry.GetGauge("g.error");

  TimeSeriesExporterConfig config;
  config.window = 2;
  TimeSeriesExporter exporter(config);

  counter->Set(10);
  gauge->Set(1.0);
  exporter.Sample(0, registry);
  counter->Set(25);
  gauge->Set(3.0);
  exporter.Sample(1, registry);
  counter->Set(30);
  gauge->Set(2.0);
  exporter.Sample(2, registry);
  ASSERT_EQ(exporter.size(), 3u);

  std::ostringstream out;
  exporter.WriteJsonl(out);
  std::istringstream lines(out.str());
  std::string line0, line1, line2;
  std::getline(lines, line0);
  std::getline(lines, line1);
  std::getline(lines, line2);

  // Cycle 1: delta = 25 − 10; window (2 samples) = 15 + 10.
  EXPECT_NE(line1.find("\"cycle\":1"), std::string::npos);
  EXPECT_NE(line1.find("\"c.msgs\":25"), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"delta\":{\"c.msgs\":15}"), std::string::npos)
      << line1;
  EXPECT_NE(line1.find("\"window_counts\":{\"c.msgs\":25}"),
            std::string::npos)
      << line1;
  // Cycle 2: window slides — only the last two deltas (15, 5) remain.
  EXPECT_NE(line2.find("\"window_counts\":{\"c.msgs\":20}"),
            std::string::npos)
      << line2;
  // Window gauge quantiles over {3, 2}: exact order statistics.
  EXPECT_NE(line2.find("\"g.error\":{\"p50\""), std::string::npos) << line2;
}

TEST(TimeSeriesExporterTest, SamplingIsIdempotentPerCycle) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c.msgs");
  TimeSeriesExporter exporter;
  counter->Set(1);
  exporter.Sample(0, registry);
  counter->Set(999);  // an on-demand re-publish within the same cycle
  exporter.Sample(0, registry);
  EXPECT_EQ(exporter.size(), 1u);
}

TEST(TimeSeriesExporterTest, JsonlIsDeterministic) {
  auto run = [] {
    MetricRegistry registry;
    Counter* counter = registry.GetCounter("c.msgs");
    Gauge* gauge = registry.GetGauge("g.error");
    TimeSeriesExporter exporter;
    for (long t = 0; t < 10; ++t) {
      counter->Set(t * 7);
      gauge->Set(static_cast<double>(t) / 3.0);
      exporter.Sample(t, registry);
    }
    std::ostringstream out;
    exporter.WriteJsonl(out);
    return out.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(TimeSeriesExporterTest, TelemetryEnableTimeSeriesWiresTheSink) {
  Telemetry telemetry;
  EXPECT_EQ(telemetry.series, nullptr);
  telemetry.EnableTimeSeries();
  ASSERT_NE(telemetry.series, nullptr);
  telemetry.registry.GetCounter("c.msgs")->Set(5);
  telemetry.series->Sample(0, telemetry.registry);
  EXPECT_EQ(telemetry.series->size(), 1u);
}

}  // namespace
}  // namespace sgm
