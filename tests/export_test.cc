// Windowed time-series export and the quantile/Prometheus surfaces of the
// metric registry: Histogram::Quantile interpolation, p50/p95/p99 in the
// JSON snapshot, the Prometheus text exposition, and TimeSeriesExporter's
// per-cycle records (cumulative/delta/window aggregates, idempotent
// sampling, deterministic JSONL).

#include "obs/export.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metric_registry.h"
#include "obs/telemetry.h"

namespace sgm {
namespace {

TEST(HistogramQuantileTest, InterpolatesWithinTheHoldingBucket) {
  Histogram histogram({1.0, 2.0, 4.0});
  // 4 observations in (1, 2]: the bucket holds ranks 1..4 of 4.
  histogram.Observe(1.5);
  histogram.Observe(1.5);
  histogram.Observe(1.5);
  histogram.Observe(1.5);
  // p50 → rank 2 of 4 inside (1, 2] → 1 + (2-1)·(2/4) = 1.5.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1.5);
  // p100 → upper edge of the holding bucket.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 2.0);
}

TEST(HistogramQuantileTest, EmptyReportsZeroAndOverflowClampsToLastEdge) {
  Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  histogram.Observe(100.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 2.0);
}

TEST(HistogramQuantileTest, SpreadAcrossBucketsOrdersQuantiles) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 9; ++i) histogram.Observe(3.0);
  histogram.Observe(7.0);
  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_LE(p50, 1.0);
  EXPECT_GT(p95, 2.0);
  EXPECT_LE(p95, 4.0);
  // Rank 99 of 100 sits exactly at the (2,4] bucket's upper edge.
  EXPECT_GE(p99, 4.0);
  EXPECT_LE(p99, 8.0);
}

TEST(MetricRegistryJsonTest, HistogramsCarryQuantileFields) {
  MetricRegistry registry;
  Histogram* histogram = registry.GetHistogram("x.latency", {1.0, 2.0});
  histogram->Observe(1.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(PrometheusTest, WritesCountersGaugesAndCumulativeHistograms) {
  MetricRegistry registry;
  registry.GetCounter("transport.retransmissions")->Increment(3);
  registry.GetGauge("failure.live_count")->Set(24.0);
  Histogram* histogram = registry.GetHistogram("site.ball_test_ns",
                                               {1.0, 2.0});
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(9.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();

  // Names: sgm_ prefix, dots to underscores, counters end in _total.
  EXPECT_NE(text.find("# TYPE sgm_transport_retransmissions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_transport_retransmissions_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sgm_failure_live_count gauge"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_failure_live_count 24"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf = count.
  EXPECT_NE(text.find("sgm_site_ball_test_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_site_ball_test_ns_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_site_ball_test_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("sgm_site_ball_test_ns_count 3"), std::string::npos);
}

TEST(TimeSeriesExporterTest, TracksCumulativeDeltaAndWindowAggregates) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c.msgs");
  Gauge* gauge = registry.GetGauge("g.error");

  TimeSeriesExporterConfig config;
  config.window = 2;
  TimeSeriesExporter exporter(config);

  counter->Set(10);
  gauge->Set(1.0);
  exporter.Sample(0, registry);
  counter->Set(25);
  gauge->Set(3.0);
  exporter.Sample(1, registry);
  counter->Set(30);
  gauge->Set(2.0);
  exporter.Sample(2, registry);
  ASSERT_EQ(exporter.size(), 3u);

  std::ostringstream out;
  exporter.WriteJsonl(out);
  std::istringstream lines(out.str());
  std::string line0, line1, line2;
  std::getline(lines, line0);
  std::getline(lines, line1);
  std::getline(lines, line2);

  // Cycle 1: delta = 25 − 10; window (2 samples) = 15 + 10.
  EXPECT_NE(line1.find("\"cycle\":1"), std::string::npos);
  EXPECT_NE(line1.find("\"c.msgs\":25"), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"delta\":{\"c.msgs\":15}"), std::string::npos)
      << line1;
  EXPECT_NE(line1.find("\"window_counts\":{\"c.msgs\":25}"),
            std::string::npos)
      << line1;
  // Cycle 2: window slides — only the last two deltas (15, 5) remain.
  EXPECT_NE(line2.find("\"window_counts\":{\"c.msgs\":20}"),
            std::string::npos)
      << line2;
  // Window gauge quantiles over {3, 2}: exact order statistics.
  EXPECT_NE(line2.find("\"g.error\":{\"p50\""), std::string::npos) << line2;
}

TEST(TimeSeriesExporterTest, SamplingIsIdempotentPerCycle) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c.msgs");
  TimeSeriesExporter exporter;
  counter->Set(1);
  exporter.Sample(0, registry);
  counter->Set(999);  // an on-demand re-publish within the same cycle
  exporter.Sample(0, registry);
  EXPECT_EQ(exporter.size(), 1u);
}

TEST(TimeSeriesExporterTest, JsonlIsDeterministic) {
  auto run = [] {
    MetricRegistry registry;
    Counter* counter = registry.GetCounter("c.msgs");
    Gauge* gauge = registry.GetGauge("g.error");
    TimeSeriesExporter exporter;
    for (long t = 0; t < 10; ++t) {
      counter->Set(t * 7);
      gauge->Set(static_cast<double>(t) / 3.0);
      exporter.Sample(t, registry);
    }
    std::ostringstream out;
    exporter.WriteJsonl(out);
    return out.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(TimeSeriesExporterTest, TelemetryEnableTimeSeriesWiresTheSink) {
  Telemetry telemetry;
  EXPECT_EQ(telemetry.series, nullptr);
  telemetry.EnableTimeSeries();
  ASSERT_NE(telemetry.series, nullptr);
  telemetry.registry.GetCounter("c.msgs")->Set(5);
  telemetry.series->Sample(0, telemetry.registry);
  EXPECT_EQ(telemetry.series->size(), 1u);
}

}  // namespace
}  // namespace sgm
