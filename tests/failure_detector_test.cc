// Unit tests of the coordinator-side failure detector: miss-count
// escalation, liveness piggybacking, transport give-up handling, the rejoin
// lifecycle, and flap quarantine (see docs/DESIGN.md).

#include <gtest/gtest.h>

#include "runtime/failure_detector.h"

namespace sgm {
namespace {

FailureDetectorConfig SmallConfig() {
  FailureDetectorConfig config;
  config.suspect_after_misses = 2;
  config.dead_after_misses = 4;
  config.flap_death_threshold = 2;
  config.flap_window_cycles = 20;
  config.quarantine_cycles = 5;
  return config;
}

TEST(FailureDetectorTest, StartsAllAlive) {
  FailureDetector fd(3, SmallConfig());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fd.state(i), FailureDetector::State::kAlive);
    EXPECT_TRUE(fd.IsLive(i));
    EXPECT_FALSE(fd.IsQuarantined(i));
  }
  EXPECT_EQ(fd.live_count(), 3);
  EXPECT_EQ(fd.total_deaths(), 0);
}

TEST(FailureDetectorTest, MissesEscalateSuspectThenDead) {
  FailureDetector fd(2, SmallConfig());
  long cycle = 0;
  // Site 1 keeps talking; site 0 goes silent.
  for (int i = 0; i < 2; ++i) {
    fd.BeginCycle(++cycle);
    fd.RecordAlive(1);
  }
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  fd.BeginCycle(++cycle);  // miss 3 > suspect_after_misses
  fd.RecordAlive(1);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kSuspect);
  EXPECT_TRUE(fd.IsLive(0));  // suspects stay in the sample pool
  EXPECT_EQ(fd.live_count(), 2);

  fd.BeginCycle(++cycle);
  fd.BeginCycle(++cycle);  // miss 5 > dead_after_misses
  EXPECT_EQ(fd.state(0), FailureDetector::State::kDead);
  EXPECT_FALSE(fd.IsLive(0));
  EXPECT_EQ(fd.live_count(), 1);
  EXPECT_EQ(fd.deaths(0), 1);
  EXPECT_EQ(fd.state(1), FailureDetector::State::kAlive);
}

TEST(FailureDetectorTest, HearingFromSuspectRevivesIt) {
  FailureDetector fd(1, SmallConfig());
  for (long c = 1; c <= 3; ++c) fd.BeginCycle(c);
  ASSERT_EQ(fd.state(0), FailureDetector::State::kSuspect);
  fd.RecordAlive(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  // ...and the miss count restarts from the revival cycle.
  fd.BeginCycle(4);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
}

TEST(FailureDetectorTest, DeadSiteIgnoresPlainTraffic) {
  FailureDetector fd(1, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  ASSERT_EQ(fd.state(0), FailureDetector::State::kDead);
  // Only the rejoin handshake revives a dead site.
  fd.RecordAlive(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kDead);
}

TEST(FailureDetectorTest, ReportUnreachableIsInstantDeath) {
  FailureDetector fd(2, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(1);
  EXPECT_EQ(fd.state(1), FailureDetector::State::kDead);
  EXPECT_EQ(fd.deaths(1), 1);
  EXPECT_EQ(fd.live_count(), 1);
}

TEST(FailureDetectorTest, RejoinLifecycle) {
  FailureDetector fd(1, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  fd.BeginRejoin(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kRejoining);
  EXPECT_FALSE(fd.IsLive(0));  // not in the sample pool until complete
  fd.CompleteRejoin(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  EXPECT_TRUE(fd.IsLive(0));
  // Rejoin resets the miss clock: no immediate re-suspicion.
  fd.BeginCycle(2);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
}

TEST(FailureDetectorTest, RepeatedDeathsQuarantine) {
  FailureDetector fd(1, SmallConfig());
  // Two deaths inside the 20-cycle flap window (threshold 2).
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  fd.BeginRejoin(0);
  fd.CompleteRejoin(0);
  EXPECT_FALSE(fd.IsQuarantined(0));
  fd.BeginCycle(2);
  fd.ReportUnreachable(0);
  EXPECT_TRUE(fd.IsQuarantined(0));
  // Quarantine defers the rejoin for quarantine_cycles, then expires.
  for (long c = 3; c <= 7; ++c) fd.BeginCycle(c);
  EXPECT_TRUE(fd.IsQuarantined(0));
  fd.BeginCycle(8);
  EXPECT_FALSE(fd.IsQuarantined(0));
}

TEST(FailureDetectorTest, SlowDeathsDoNotQuarantine) {
  FailureDetectorConfig config = SmallConfig();
  config.flap_window_cycles = 3;  // deaths 10 cycles apart fall outside
  FailureDetector fd(1, config);
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  fd.BeginRejoin(0);
  fd.CompleteRejoin(0);
  fd.BeginCycle(11);
  fd.ReportUnreachable(0);
  EXPECT_FALSE(fd.IsQuarantined(0));
  EXPECT_EQ(fd.deaths(0), 2);
  EXPECT_EQ(fd.total_deaths(), 2);
}

TEST(FailureDetectorTest, StateNames) {
  EXPECT_STREQ(ToString(FailureDetector::State::kAlive), "alive");
  EXPECT_STREQ(ToString(FailureDetector::State::kSuspect), "suspect");
  EXPECT_STREQ(ToString(FailureDetector::State::kDead), "dead");
  EXPECT_STREQ(ToString(FailureDetector::State::kRejoining), "rejoining");
}

}  // namespace
}  // namespace sgm
