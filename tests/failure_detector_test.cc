// Unit tests of the coordinator-side failure detector: miss-count
// escalation, liveness piggybacking, transport give-up handling, the rejoin
// lifecycle, and flap quarantine (see docs/DESIGN.md).

#include <gtest/gtest.h>

#include "runtime/failure_detector.h"

namespace sgm {
namespace {

FailureDetectorConfig SmallConfig() {
  FailureDetectorConfig config;
  config.suspect_after_misses = 2;
  config.dead_after_misses = 4;
  config.flap_death_threshold = 2;
  config.flap_window_cycles = 20;
  config.quarantine_cycles = 5;
  return config;
}

TEST(FailureDetectorTest, StartsAllAlive) {
  FailureDetector fd(3, SmallConfig());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fd.state(i), FailureDetector::State::kAlive);
    EXPECT_TRUE(fd.IsLive(i));
    EXPECT_FALSE(fd.IsQuarantined(i));
  }
  EXPECT_EQ(fd.live_count(), 3);
  EXPECT_EQ(fd.total_deaths(), 0);
}

TEST(FailureDetectorTest, MissesEscalateSuspectThenDead) {
  FailureDetector fd(2, SmallConfig());
  long cycle = 0;
  // Site 1 keeps talking; site 0 goes silent.
  for (int i = 0; i < 2; ++i) {
    fd.BeginCycle(++cycle);
    fd.RecordAlive(1);
  }
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  fd.BeginCycle(++cycle);  // miss 3 > suspect_after_misses
  fd.RecordAlive(1);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kSuspect);
  EXPECT_TRUE(fd.IsLive(0));  // suspects stay in the sample pool
  EXPECT_EQ(fd.live_count(), 2);

  fd.BeginCycle(++cycle);
  fd.BeginCycle(++cycle);  // miss 5 > dead_after_misses
  EXPECT_EQ(fd.state(0), FailureDetector::State::kDead);
  EXPECT_FALSE(fd.IsLive(0));
  EXPECT_EQ(fd.live_count(), 1);
  EXPECT_EQ(fd.deaths(0), 1);
  EXPECT_EQ(fd.state(1), FailureDetector::State::kAlive);
}

TEST(FailureDetectorTest, HearingFromSuspectRevivesIt) {
  FailureDetector fd(1, SmallConfig());
  for (long c = 1; c <= 3; ++c) fd.BeginCycle(c);
  ASSERT_EQ(fd.state(0), FailureDetector::State::kSuspect);
  fd.RecordAlive(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  // ...and the miss count restarts from the revival cycle.
  fd.BeginCycle(4);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
}

TEST(FailureDetectorTest, DeadSiteIgnoresPlainTraffic) {
  FailureDetector fd(1, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  ASSERT_EQ(fd.state(0), FailureDetector::State::kDead);
  // Only the rejoin handshake revives a dead site.
  fd.RecordAlive(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kDead);
}

TEST(FailureDetectorTest, ReportUnreachableIsInstantDeath) {
  FailureDetector fd(2, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(1);
  EXPECT_EQ(fd.state(1), FailureDetector::State::kDead);
  EXPECT_EQ(fd.deaths(1), 1);
  EXPECT_EQ(fd.live_count(), 1);
}

TEST(FailureDetectorTest, RejoinLifecycle) {
  FailureDetector fd(1, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  fd.BeginRejoin(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kRejoining);
  EXPECT_FALSE(fd.IsLive(0));  // not in the sample pool until complete
  fd.CompleteRejoin(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  EXPECT_TRUE(fd.IsLive(0));
  // Rejoin resets the miss clock: no immediate re-suspicion.
  fd.BeginCycle(2);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
}

TEST(FailureDetectorTest, RepeatedDeathsQuarantine) {
  FailureDetector fd(1, SmallConfig());
  // Two deaths inside the 20-cycle flap window (threshold 2).
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  fd.BeginRejoin(0);
  fd.CompleteRejoin(0);
  EXPECT_FALSE(fd.IsQuarantined(0));
  fd.BeginCycle(2);
  fd.ReportUnreachable(0);
  EXPECT_TRUE(fd.IsQuarantined(0));
  // Quarantine defers the rejoin for quarantine_cycles, then expires.
  for (long c = 3; c <= 7; ++c) fd.BeginCycle(c);
  EXPECT_TRUE(fd.IsQuarantined(0));
  fd.BeginCycle(8);
  EXPECT_FALSE(fd.IsQuarantined(0));
}

TEST(FailureDetectorTest, SlowDeathsDoNotQuarantine) {
  FailureDetectorConfig config = SmallConfig();
  config.flap_window_cycles = 3;  // deaths 10 cycles apart fall outside
  FailureDetector fd(1, config);
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  fd.BeginRejoin(0);
  fd.CompleteRejoin(0);
  fd.BeginCycle(11);
  fd.ReportUnreachable(0);
  EXPECT_FALSE(fd.IsQuarantined(0));
  EXPECT_EQ(fd.deaths(0), 2);
  EXPECT_EQ(fd.total_deaths(), 2);
}

TEST(FailureDetectorTest, ZeroJitterAppliesExactConfiguredThresholds) {
  FailureDetector fd(4, SmallConfig());
  for (int site = 0; site < 4; ++site) {
    EXPECT_EQ(fd.suspect_after(site), 2);
    EXPECT_EQ(fd.dead_after(site), 4);
    EXPECT_EQ(fd.quarantine_cycles(site), 5);
  }
}

TEST(FailureDetectorTest, JitteredThresholdsAreSeedDeterministic) {
  FailureDetectorConfig config = SmallConfig();
  config.suspect_after_misses = 20;
  config.dead_after_misses = 40;
  config.quarantine_cycles = 100;
  config.threshold_jitter = 0.3;
  config.jitter_seed = 77;
  FailureDetector a(16, config);
  FailureDetector b(16, config);
  bool any_differs_across_sites = false;
  for (int site = 0; site < 16; ++site) {
    // Same seed → identical per-site thresholds (replayable).
    EXPECT_EQ(a.suspect_after(site), b.suspect_after(site));
    EXPECT_EQ(a.dead_after(site), b.dead_after(site));
    EXPECT_EQ(a.quarantine_cycles(site), b.quarantine_cycles(site));
    if (a.suspect_after(site) != a.suspect_after(0) ||
        a.dead_after(site) != a.dead_after(0)) {
      any_differs_across_sites = true;
    }
  }
  // The point of jitter is desynchronization: with 16 sites and ±30%
  // on a base of 20/40 the thresholds cannot all collapse to one value.
  EXPECT_TRUE(any_differs_across_sites);

  FailureDetectorConfig other = config;
  other.jitter_seed = 78;
  FailureDetector c(16, other);
  bool any_differs_across_seeds = false;
  for (int site = 0; site < 16; ++site) {
    if (a.suspect_after(site) != c.suspect_after(site)) {
      any_differs_across_seeds = true;
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(FailureDetectorTest, JitteredThresholdsStayWithinConfiguredBand) {
  FailureDetectorConfig config = SmallConfig();
  config.suspect_after_misses = 20;
  config.dead_after_misses = 40;
  config.quarantine_cycles = 100;
  config.threshold_jitter = 0.25;
  FailureDetector fd(64, config);
  for (int site = 0; site < 64; ++site) {
    EXPECT_GE(fd.suspect_after(site), 15);
    EXPECT_LE(fd.suspect_after(site), 25);
    EXPECT_GE(fd.dead_after(site), 30);
    EXPECT_LE(fd.dead_after(site), 50);
    EXPECT_GE(fd.quarantine_cycles(site), 75);
    EXPECT_LE(fd.quarantine_cycles(site), 125);
    // Dead must stay strictly above suspect or the kSuspect state vanishes.
    EXPECT_GT(fd.dead_after(site), fd.suspect_after(site));
  }
}

TEST(FailureDetectorTest, SnapshotRestoreRecomputesJitteredThresholds) {
  FailureDetectorConfig config = SmallConfig();
  config.threshold_jitter = 0.4;
  config.suspect_after_misses = 10;
  config.dead_after_misses = 20;
  FailureDetector fd(8, config);
  fd.BeginCycle(1);
  fd.ReportUnreachable(3);
  const auto snapshot = fd.Snapshot();

  // Thresholds are a pure function of the config — a recovered detector
  // lands on the same per-site values without them being checkpointed.
  FailureDetector recovered(8, config);
  recovered.Restore(snapshot, 1);
  for (int site = 0; site < 8; ++site) {
    EXPECT_EQ(recovered.suspect_after(site), fd.suspect_after(site));
    EXPECT_EQ(recovered.dead_after(site), fd.dead_after(site));
    EXPECT_EQ(recovered.quarantine_cycles(site), fd.quarantine_cycles(site));
    EXPECT_EQ(recovered.state(site), fd.state(site));
  }
  EXPECT_EQ(recovered.deaths(3), 1);
}

TEST(FailureDetectorTest, LaggingVerdictAfterConsecutiveDeadlineMisses) {
  FailureDetector fd(2, SmallConfig());  // lagging_after_deadline_misses = 2
  fd.BeginCycle(1);
  fd.RecordAlive(0);
  fd.RecordAlive(1);
  EXPECT_FALSE(fd.RecordMissedDeadline(0));  // miss 1 of 2: no verdict yet
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  fd.BeginCycle(2);
  fd.RecordAlive(1);
  // The transition happens exactly on the call that crosses the threshold.
  EXPECT_TRUE(fd.RecordMissedDeadline(0));
  EXPECT_EQ(fd.state(0), FailureDetector::State::kLagging);
  // Lagging is like dead for membership: out of the HT sample pool, but a
  // distinct verdict with its own counters and an open staleness window.
  EXPECT_FALSE(fd.IsLive(0));
  EXPECT_EQ(fd.live_count(), 1);
  EXPECT_EQ(fd.lagging_count(), 1);
  EXPECT_EQ(fd.total_lagging_verdicts(), 1);
  EXPECT_EQ(fd.lagging_since(0), 2);
  EXPECT_EQ(fd.deaths(0), 0);  // a straggler is not a death
  // Further misses keep the existing verdict instead of stacking new ones.
  EXPECT_FALSE(fd.RecordMissedDeadline(0));
  EXPECT_EQ(fd.total_lagging_verdicts(), 1);
}

TEST(FailureDetectorTest, DeadlineMetResetsConsecutiveMisses) {
  FailureDetector fd(1, SmallConfig());
  fd.BeginCycle(1);
  fd.RecordAlive(0);
  EXPECT_FALSE(fd.RecordMissedDeadline(0));
  fd.RecordDeadlineMet(0);  // made the next barrier: clean slate
  fd.BeginCycle(2);
  fd.RecordAlive(0);
  EXPECT_FALSE(fd.RecordMissedDeadline(0));  // miss 1 again, not miss 2
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  EXPECT_TRUE(fd.RecordMissedDeadline(0));
  EXPECT_EQ(fd.state(0), FailureDetector::State::kLagging);
}

TEST(FailureDetectorTest, DeadAndRejoiningSitesDoNotAccrueDeadlineMisses) {
  FailureDetector fd(1, SmallConfig());
  fd.BeginCycle(1);
  fd.ReportUnreachable(0);
  EXPECT_FALSE(fd.RecordMissedDeadline(0));
  EXPECT_FALSE(fd.RecordMissedDeadline(0));
  EXPECT_EQ(fd.state(0), FailureDetector::State::kDead);
  EXPECT_EQ(fd.total_lagging_verdicts(), 0);
  fd.BeginRejoin(0);
  EXPECT_FALSE(fd.RecordMissedDeadline(0));
  EXPECT_EQ(fd.state(0), FailureDetector::State::kRejoining);
}

TEST(FailureDetectorTest, LaggingRejoinClosesStalenessWindow) {
  FailureDetector fd(1, SmallConfig());
  for (long c = 1; c <= 5; ++c) {  // keep the heartbeat clock warm
    fd.BeginCycle(c);
    fd.RecordAlive(0);
  }
  fd.RecordMissedDeadline(0);
  ASSERT_TRUE(fd.RecordMissedDeadline(0));  // lagging since cycle 5
  // The laggard catches up four cycles later: quarantine lifts through the
  // same rejoin handshake a dead site uses, and the window is accounted.
  fd.BeginCycle(9);
  fd.BeginRejoin(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kRejoining);
  fd.CompleteRejoin(0);
  EXPECT_EQ(fd.state(0), FailureDetector::State::kAlive);
  EXPECT_TRUE(fd.IsLive(0));
  EXPECT_EQ(fd.lagging_since(0), -1);
  EXPECT_EQ(fd.staleness_cycles_total(), 4);
  EXPECT_EQ(fd.staleness_cycles_max(), 4);
  // A second, shorter lag accumulates the total but not the max.
  fd.BeginCycle(10);
  fd.RecordMissedDeadline(0);
  ASSERT_TRUE(fd.RecordMissedDeadline(0));
  fd.BeginCycle(12);
  fd.BeginRejoin(0);
  fd.CompleteRejoin(0);
  EXPECT_EQ(fd.staleness_cycles_total(), 6);
  EXPECT_EQ(fd.staleness_cycles_max(), 4);
  EXPECT_EQ(fd.total_lagging_verdicts(), 2);
}

TEST(FailureDetectorTest, LaggingThresholdIsJitteredWithinBand) {
  FailureDetectorConfig config = SmallConfig();
  config.lagging_after_deadline_misses = 20;
  config.threshold_jitter = 0.25;
  config.jitter_seed = 77;
  FailureDetector a(64, config);
  FailureDetector b(64, config);
  bool any_differs = false;
  for (int site = 0; site < 64; ++site) {
    EXPECT_EQ(a.lagging_after(site), b.lagging_after(site));  // replayable
    EXPECT_GE(a.lagging_after(site), 15);
    EXPECT_LE(a.lagging_after(site), 25);
    if (a.lagging_after(site) != a.lagging_after(0)) any_differs = true;
  }
  // Jitter exists to desynchronize verdicts across a slow fleet.
  EXPECT_TRUE(any_differs);
}

TEST(FailureDetectorTest, SnapshotRestorePreservesLaggingVerdict) {
  FailureDetector fd(2, SmallConfig());
  fd.BeginCycle(3);
  fd.RecordAlive(0);
  fd.RecordAlive(1);
  fd.RecordMissedDeadline(1);
  ASSERT_TRUE(fd.RecordMissedDeadline(1));
  const auto snapshot = fd.Snapshot();

  FailureDetector recovered(2, SmallConfig());
  recovered.Restore(snapshot, 7);
  EXPECT_EQ(recovered.state(1), FailureDetector::State::kLagging);
  EXPECT_FALSE(recovered.IsLive(1));
  // The pre-crash staleness window is not durable: the clock restarts at
  // the recovery cycle (under-counted, never guessed).
  EXPECT_EQ(recovered.lagging_since(1), 7);
  recovered.BeginCycle(9);
  recovered.BeginRejoin(1);
  recovered.CompleteRejoin(1);
  EXPECT_EQ(recovered.staleness_cycles_total(), 2);
}

TEST(FailureDetectorTest, StateNames) {
  EXPECT_STREQ(ToString(FailureDetector::State::kAlive), "alive");
  EXPECT_STREQ(ToString(FailureDetector::State::kSuspect), "suspect");
  EXPECT_STREQ(ToString(FailureDetector::State::kDead), "dead");
  EXPECT_STREQ(ToString(FailureDetector::State::kRejoining), "rejoining");
  EXPECT_STREQ(ToString(FailureDetector::State::kLagging), "lagging");
}

}  // namespace
}  // namespace sgm
