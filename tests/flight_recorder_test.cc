// FlightRecorder: ring semantics (wrap, overwrite accounting, oversize
// drop), dump parseability, TraceLog mirroring, and the crash contract —
// a forked child that abort()s leaves a JSONL dump the merge pipeline
// ingests with zero orphans.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"

namespace sgm {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(FlightRecorderTest, KeepsMostRecentWindowOldestFirst) {
  FlightRecorder ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Record("{\"n\": " + std::to_string(i) + "}");
  }
  const std::vector<std::string> lines = Lines(ring.DumpString());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines.front(), "{\"n\": 6}");
  EXPECT_EQ(lines.back(), "{\"n\": 9}");
  EXPECT_EQ(ring.lines_recorded(), 10);
  EXPECT_EQ(ring.overwrites(), 6);
  EXPECT_EQ(ring.lines_dropped(), 0);
}

TEST(FlightRecorderTest, OversizeLinesAreDroppedWholeNotTruncated) {
  FlightRecorder ring(4);
  ring.Record("{\"ok\": 1}");
  ring.Record(std::string(FlightRecorder::kSlotBytes + 1, 'x'));
  ring.Record("{\"ok\": 2}");
  const std::vector<std::string> lines = Lines(ring.DumpString());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"ok\": 1}");
  EXPECT_EQ(lines[1], "{\"ok\": 2}");
  EXPECT_EQ(ring.lines_dropped(), 1);
}

// Events mirrored from a TraceLog render to the same schema-valid lines
// the regular JSONL writer would produce for the tail window.
TEST(FlightRecorderTest, MirroredTraceEventsValidateAndParse) {
  FlightRecorder ring(8);
  TraceLog log;
  log.AttachFlightRecorder(&ring);
  log.SetProcess("coordinator");
  log.SetCycle(4);
  log.Emit("protocol", "sync_cycle_begin", -1,
           {{"span", 9}, {"trigger", "local_alarm"}});
  log.Emit("reliability", "heartbeat", 2);
  log.Emit("protocol", "epoch_bump", -1, {{"epoch", 1}});

  const std::vector<std::string> lines = Lines(ring.DumpString());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(ValidateTraceJsonLine(line, &error)) << line << ": " << error;
    TraceEvent event;
    EXPECT_TRUE(ParseTraceEventLine(line, &event, &error)) << error;
    EXPECT_EQ(event.proc, "coordinator");
  }
  EXPECT_EQ(ring.lines_recorded(), 3);
}

// The crash contract, end to end: a forked child arms the crash dump,
// emits through a TraceLog, then abort()s. The parent must find a dump
// whose every line parses and which merges into a span forest with no
// orphan attributable to the dump (the cascade root is in the window).
TEST(FlightRecorderTest, AbortingChildLeavesMergeIngestibleDump) {
  const std::string path =
      ::testing::TempDir() + "/flight-abort-dump.jsonl";
  std::remove(path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: mimic a daemon role — process label, armed recorder, a short
    // burst of cascade traffic — then die the ugly way.
    FlightRecorder& ring = FlightRecorder::Instance();
    TraceLog log;
    log.AttachFlightRecorder(&ring);
    log.SetProcess("site-3");
    log.SetCycle(11);
    log.Emit("protocol", "sync_cycle_begin", -1,
             {{"span", 31}, {"trigger", "local_alarm"}});
    log.Emit("transport", "msg_send", -1,
             {{"type", "kProbeRequest"},
              {"span", 32},
              {"parent", 31},
              {"bytes", 64}});
    log.Emit("reliability", "heartbeat", 3);
    ring.InstallCrashDump(path);
    std::abort();
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child should die by signal";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash dump missing at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::string> lines = Lines(buffer.str());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(ValidateTraceJsonLine(line, &error)) << line << ": " << error;
  }

  // Merge-ingest the dump like trace_inspect --merge would.
  std::vector<TraceEvent> events;
  std::string warning;
  const Status loaded = LoadTraceJsonlTolerant(path, "site-3",
                                               /*validate=*/true, &events,
                                               &warning);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_TRUE(warning.empty()) << warning;
  ASSERT_EQ(events.size(), 3u);
  const SpanForestSummary forest =
      SummarizeSpanForest(MergeTraceTimelines({std::move(events)}));
  EXPECT_EQ(forest.roots, 1);
  EXPECT_TRUE(forest.orphans.empty())
      << "dump introduced orphans: " << forest.orphans.front();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgm
