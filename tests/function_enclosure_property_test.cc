// Property tests of the MonitoredFunction conservativeness contract
// (DESIGN.md §7): for every function and random ball, the RangeOverBall()
// enclosure must bound the function over sampled ball points, and
// DistanceToSurface() must be a lower bound on the true surface distance.
// These are the invariants GM's no-false-negative argument rests on.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "functions/chi_square.h"
#include "functions/inner_product.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linear.h"
#include "functions/linf_distance.h"
#include "functions/mutual_information.h"
#include "functions/variance.h"

namespace sgm {
namespace {

struct FunctionCase {
  std::string label;
  std::unique_ptr<MonitoredFunction> (*make)();
  std::size_t dim;
  double domain_lo;
  double domain_hi;
  double max_radius;
};

std::unique_ptr<MonitoredFunction> MakeL2() {
  return std::make_unique<L2Norm>(false);
}
std::unique_ptr<MonitoredFunction> MakeSj() {
  return std::make_unique<L2Norm>(true);
}
std::unique_ptr<MonitoredFunction> MakeLinf() {
  return std::make_unique<LInfDistance>(Vector{2.0, 5.0, 1.0, 4.0});
}
std::unique_ptr<MonitoredFunction> MakeJd() {
  return std::make_unique<JeffreyDivergence>(Vector{6.0, 3.0, 5.0, 4.0});
}
std::unique_ptr<MonitoredFunction> MakeChi() {
  return std::make_unique<ChiSquare>(100.0);
}
std::unique_ptr<MonitoredFunction> MakeMi() {
  return std::make_unique<MutualInformation>(20.0, 10);
}
std::unique_ptr<MonitoredFunction> MakeStdev() {
  return std::make_unique<CoordinateDispersion>(false);
}
std::unique_ptr<MonitoredFunction> MakeVariance() {
  return std::make_unique<CoordinateDispersion>(true);
}
std::unique_ptr<MonitoredFunction> MakeLinear() {
  return std::make_unique<LinearFunction>(Vector{1.0, -2.0, 0.5, 1.5}, 1.0);
}
std::unique_ptr<MonitoredFunction> MakeJoin() {
  return std::make_unique<InnerProductJoin>(4);
}

std::vector<FunctionCase> AllCases() {
  // Count-valued functions get positive-orthant domains matching their
  // real operating regime.
  return {
      {"l2", &MakeL2, 4, -5.0, 5.0, 3.0},
      {"self_join", &MakeSj, 4, -5.0, 5.0, 3.0},
      {"linf", &MakeLinf, 4, -2.0, 8.0, 3.0},
      {"jd", &MakeJd, 4, 0.5, 12.0, 2.0},
      {"chi2", &MakeChi, 3, 1.0, 30.0, 2.0},
      {"mi", &MakeMi, 3, 1.0, 15.0, 1.5},
      {"stdev", &MakeStdev, 4, -5.0, 5.0, 3.0},
      {"variance", &MakeVariance, 4, -5.0, 5.0, 3.0},
      {"linear", &MakeLinear, 4, -5.0, 5.0, 3.0},
      {"join", &MakeJoin, 4, -4.0, 4.0, 2.0},
  };
}

class EnclosureTest : public ::testing::TestWithParam<std::size_t> {};

Vector RandomPoint(std::size_t dim, double lo, double hi, Rng* rng) {
  Vector p(dim);
  for (std::size_t j = 0; j < dim; ++j) p[j] = rng->NextDouble(lo, hi);
  return p;
}

Vector RandomBallPoint(const Ball& ball, Rng* rng) {
  Vector direction(ball.dim());
  for (std::size_t j = 0; j < ball.dim(); ++j) {
    direction[j] = rng->NextGaussian();
  }
  const double norm = direction.Norm();
  Vector point = ball.center();
  if (norm > 0.0) {
    const double r = ball.radius() * std::pow(rng->NextDouble(), 0.5);
    point.Axpy(r / norm, direction);
  }
  return point;
}

// Every sampled ball point's value must lie inside the reported enclosure.
TEST_P(EnclosureTest, RangeOverBallEncloses) {
  const FunctionCase fc = AllCases()[GetParam()];
  auto function = fc.make();
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Vector center = RandomPoint(fc.dim, fc.domain_lo, fc.domain_hi, &rng);
    const Ball ball(center, rng.NextDouble(0.01, fc.max_radius));
    const Interval range = function->RangeOverBall(ball);
    EXPECT_LE(range.lo, range.hi);
    for (int s = 0; s < 25; ++s) {
      const Vector point = RandomBallPoint(ball, &rng);
      const double value = function->Value(point);
      EXPECT_GE(value, range.lo - 1e-7)
          << fc.label << " trial " << trial << " point " << point.ToString();
      EXPECT_LE(value, range.hi + 1e-7)
          << fc.label << " trial " << trial << " point " << point.ToString();
    }
  }
}

// BallCrossesThreshold must never report "safe" when sampled ball points
// actually straddle the threshold.
TEST_P(EnclosureTest, CrossingTestConservative) {
  const FunctionCase fc = AllCases()[GetParam()];
  auto function = fc.make();
  Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Vector center = RandomPoint(fc.dim, fc.domain_lo, fc.domain_hi, &rng);
    const Ball ball(center, rng.NextDouble(0.01, fc.max_radius));
    double lo = function->Value(ball.center());
    double hi = lo;
    for (int s = 0; s < 40; ++s) {
      const double value = function->Value(RandomBallPoint(ball, &rng));
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    const double threshold = 0.5 * (lo + hi);
    if (lo < threshold && threshold < hi) {
      EXPECT_TRUE(function->BallCrossesThreshold(ball, threshold))
          << fc.label << " trial " << trial;
    }
  }
}

// The reported surface distance must be a lower bound: every sampled point
// strictly closer than it must sit on the same side of the threshold.
TEST_P(EnclosureTest, DistanceToSurfaceIsLowerBound) {
  const FunctionCase fc = AllCases()[GetParam()];
  auto function = fc.make();
  Rng rng(3000 + GetParam());
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 25; ++trial) {
    const Vector point = RandomPoint(fc.dim, fc.domain_lo, fc.domain_hi, &rng);
    const double value = function->Value(point);
    // Pick a threshold a bit away from the point's value.
    const double threshold = value + (rng.NextBernoulli(0.5) ? 1.0 : -1.0) *
                                         rng.NextDouble(0.05, 0.5) *
                                         (1.0 + std::abs(value));
    const double distance = function->DistanceToSurface(point, threshold);
    if (!std::isfinite(distance) || distance <= 1e-9) continue;
    ++checked;
    const bool above = value > threshold;
    const Ball inside(point, 0.95 * distance);
    for (int s = 0; s < 20; ++s) {
      const double v = function->Value(RandomBallPoint(inside, &rng));
      EXPECT_EQ(v > threshold, above)
          << fc.label << " trial " << trial << " dist " << distance;
    }
  }
  EXPECT_GT(checked, 0) << fc.label;
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, EnclosureTest,
                         ::testing::Range<std::size_t>(0, 10),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return AllCases()[info.param].label;
                         });

}  // namespace
}  // namespace sgm
