#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "functions/chi_square.h"
#include "functions/inner_product.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linear.h"
#include "functions/linf_distance.h"
#include "functions/mutual_information.h"
#include "functions/variance.h"

namespace sgm {
namespace {

// ---------------------------------------------------------------- L2 / SJ --

TEST(L2NormTest, Values) {
  L2Norm norm(false);
  L2Norm sj(true);
  const Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm.Value(v), 5.0);
  EXPECT_DOUBLE_EQ(sj.Value(v), 25.0);
}

TEST(L2NormTest, GradientMatchesNumeric) {
  L2Norm sj(true);
  const Vector v{1.0, -2.0, 0.5};
  const Vector grad = sj.Gradient(v);
  EXPECT_NEAR(grad[0], 2.0, 1e-9);
  EXPECT_NEAR(grad[1], -4.0, 1e-9);
  EXPECT_NEAR(grad[2], 1.0, 1e-9);
}

TEST(L2NormTest, ExactRangeOverBall) {
  L2Norm norm(false);
  const Ball ball(Vector{3.0, 0.0}, 1.0);
  const Interval range = norm.RangeOverBall(ball);
  EXPECT_DOUBLE_EQ(range.lo, 2.0);
  EXPECT_DOUBLE_EQ(range.hi, 4.0);
}

TEST(L2NormTest, RangeClampsAtZero) {
  L2Norm norm(false);
  const Ball ball(Vector{0.5, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(norm.RangeOverBall(ball).lo, 0.0);
}

TEST(L2NormTest, DistanceToSurface) {
  L2Norm norm(false);
  EXPECT_DOUBLE_EQ(norm.DistanceToSurface(Vector{3.0, 4.0}, 2.0), 3.0);
  L2Norm sj(true);
  EXPECT_DOUBLE_EQ(sj.DistanceToSurface(Vector{3.0, 4.0}, 4.0), 3.0);
  EXPECT_TRUE(std::isinf(sj.DistanceToSurface(Vector{1.0, 0.0}, -1.0)));
}

TEST(L2NormTest, BallCrossing) {
  L2Norm norm(false);
  EXPECT_TRUE(norm.BallCrossesThreshold(Ball(Vector{3.0, 0.0}, 1.0), 3.5));
  EXPECT_FALSE(norm.BallCrossesThreshold(Ball(Vector{3.0, 0.0}, 1.0), 4.5));
  EXPECT_FALSE(norm.BallCrossesThreshold(Ball(Vector{3.0, 0.0}, 1.0), 1.5));
}

TEST(L2NormTest, Homogeneity) {
  double degree = 0.0;
  EXPECT_TRUE(L2Norm(false).HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 1.0);
  EXPECT_TRUE(L2Norm(true).HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 2.0);
}

// ------------------------------------------------------------------- Linf --

TEST(LInfTest, ValueAgainstReference) {
  LInfDistance f(Vector{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(f.Value(Vector{1.0, 4.0, 0.0}), 3.0);
}

TEST(LInfTest, OnSyncReanchors) {
  LInfDistance f(Vector{0.0, 0.0});
  EXPECT_DOUBLE_EQ(f.Value(Vector{2.0, 0.0}), 2.0);
  f.OnSync(Vector{2.0, 0.0});
  EXPECT_DOUBLE_EQ(f.Value(Vector{2.0, 0.0}), 0.0);
}

TEST(LInfTest, CloneIsIndependent) {
  LInfDistance f(Vector{0.0});
  auto clone = f.Clone();
  clone->OnSync(Vector{5.0});
  EXPECT_DOUBLE_EQ(f.Value(Vector{5.0}), 5.0);        // original unchanged
  EXPECT_DOUBLE_EQ(clone->Value(Vector{5.0}), 0.0);   // clone re-anchored
}

TEST(LInfTest, RangeOverBallMax) {
  LInfDistance f(Vector{0.0, 0.0});
  const Ball ball(Vector{3.0, 1.0}, 0.5);
  EXPECT_DOUBLE_EQ(f.RangeOverBall(ball).hi, 3.5);
}

TEST(LInfTest, RangeOverBallMinExactWhenLipschitzTight) {
  // Center on the x-axis: moving straight toward ref reduces L∞ at rate 1.
  LInfDistance f(Vector{0.0, 0.0});
  const Ball ball(Vector{3.0, 0.0}, 1.0);
  EXPECT_NEAR(f.RangeOverBall(ball).lo, 2.0, 1e-9);
}

TEST(LInfTest, RangeOverBallMinDiagonalCase) {
  // From (3,3), reducing max|coord| to t costs √2·(3−t); radius 1 reaches
  // t = 3 − 1/√2.
  LInfDistance f(Vector{0.0, 0.0});
  const Ball ball(Vector{3.0, 3.0}, 1.0);
  EXPECT_NEAR(f.RangeOverBall(ball).lo, 3.0 - 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(LInfTest, DistanceToSurfaceInside) {
  LInfDistance f(Vector{0.0, 0.0});
  EXPECT_DOUBLE_EQ(f.DistanceToSurface(Vector{1.0, 0.5}, 4.0), 3.0);
}

TEST(LInfTest, DistanceToSurfaceOutside) {
  LInfDistance f(Vector{0.0, 0.0});
  // (5, 5) to box of half-width 4: excess (1, 1) → √2.
  EXPECT_NEAR(f.DistanceToSurface(Vector{5.0, 5.0}, 4.0), std::sqrt(2.0),
              1e-12);
}

// --------------------------------------------------------------------- JD --

TEST(JeffreyDivergenceTest, ZeroAtReference) {
  JeffreyDivergence jd(Vector{5.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(jd.Value(Vector{5.0, 3.0, 2.0}), 0.0);
}

TEST(JeffreyDivergenceTest, PositiveAwayFromReference) {
  JeffreyDivergence jd(Vector{5.0, 5.0});
  EXPECT_GT(jd.Value(Vector{9.0, 1.0}), 0.0);
}

TEST(JeffreyDivergenceTest, SymmetricInArguments) {
  // JD(p, q) == JD(q, p).
  JeffreyDivergence forward(Vector{6.0, 2.0, 2.0});
  JeffreyDivergence backward(Vector{2.0, 5.0, 3.0});
  EXPECT_NEAR(forward.Value(Vector{2.0, 5.0, 3.0}),
              backward.Value(Vector{6.0, 2.0, 2.0}), 1e-12);
}

TEST(JeffreyDivergenceTest, GradientMatchesNumeric) {
  JeffreyDivergence jd(Vector{4.0, 4.0});
  const Vector v{6.0, 2.0};
  const Vector analytic = jd.Gradient(v);
  // Compare against the base-class finite differences.
  const MonitoredFunction& base = jd;
  Vector probe = v;
  for (int j = 0; j < 2; ++j) {
    const double h = 1e-6;
    probe[j] = v[j] + h;
    const double fp = base.Value(probe);
    probe[j] = v[j] - h;
    const double fm = base.Value(probe);
    probe[j] = v[j];
    EXPECT_NEAR(analytic[j], (fp - fm) / (2 * h), 1e-5);
  }
}

TEST(JeffreyDivergenceTest, OnSyncMovesReference) {
  JeffreyDivergence jd(Vector{4.0, 4.0});
  jd.OnSync(Vector{1.0, 7.0});
  EXPECT_DOUBLE_EQ(jd.Value(Vector{1.0, 7.0}), 0.0);
  EXPECT_GT(jd.Value(Vector{4.0, 4.0}), 0.0);
}

// -------------------------------------------------------------------- χ² --

TEST(ChiSquareTest, IndependenceGivesNearZero) {
  ChiSquare chi(200.0);
  // a/b/c/d proportional to independent products: a=8,b=32,c=32,d=128
  // (p_term = .2, p_cat = .2, window 200).
  EXPECT_NEAR(chi.Value(Vector{8.0, 32.0, 32.0}), 0.0, 0.05);
}

TEST(ChiSquareTest, AssociationRaisesScore) {
  ChiSquare chi(200.0);
  const double independent = chi.Value(Vector{8.0, 32.0, 32.0});
  const double associated = chi.Value(Vector{30.0, 10.0, 10.0});
  EXPECT_GT(associated, independent + 0.5);
}

TEST(ChiSquareTest, PerfectAssociationNearScale) {
  // All mass on the diagonal (a, d): φ² → 1, score → scale (= 2).
  ChiSquare chi(200.0, /*smoothing=*/0.01);
  EXPECT_NEAR(chi.Value(Vector{100.0, 0.0, 0.0}), 2.0, 0.01);
}

TEST(ChiSquareTest, NonNegative) {
  ChiSquare chi(100.0);
  EXPECT_GE(chi.Value(Vector{0.0, 0.0, 0.0}), 0.0);
  EXPECT_GE(chi.Value(Vector{50.0, 25.0, 25.0}), 0.0);
}

TEST(ChiSquareTest, HandlesDegenerateCells) {
  ChiSquare chi(100.0);
  // All mass in one cell and negative probes must stay finite.
  EXPECT_TRUE(std::isfinite(chi.Value(Vector{100.0, 0.0, 0.0})));
  EXPECT_TRUE(std::isfinite(chi.Value(Vector{-5.0, -5.0, -5.0})));
}

// -------------------------------------------------------------------- MI --

TEST(MutualInformationTest, MatchesFormula) {
  MutualInformation mi(20.0, 5, 0.1);
  const Vector v{3.0, 2.0, 4.0};
  const double v1 = 3.1, v2 = 2.1, v3 = 4.1;
  EXPECT_NEAR(mi.Value(v), std::log(v1 * 20.0 * 5.0 / ((v1 + v3) * (v1 + v2))),
              1e-12);
}

TEST(MutualInformationTest, ExampleThreshold) {
  MutualInformation mi(20.0, 10);
  EXPECT_NEAR(mi.ExampleThreshold(), std::log(10.0) + 0.01, 1e-12);
}

TEST(MutualInformationTest, GradientMatchesNumeric) {
  MutualInformation mi(20.0, 10);
  const Vector v{3.0, 2.0, 4.0};
  const Vector analytic = mi.Gradient(v);
  Vector probe = v;
  for (int j = 0; j < 3; ++j) {
    const double h = 1e-6;
    probe[j] = v[j] + h;
    const double fp = mi.Value(probe);
    probe[j] = v[j] - h;
    const double fm = mi.Value(probe);
    probe[j] = v[j];
    EXPECT_NEAR(analytic[j], (fp - fm) / (2 * h), 1e-5);
  }
}

// ----------------------------------------------------------- stdev / var --

TEST(DispersionTest, KnownValues) {
  CoordinateDispersion stdev(false);
  CoordinateDispersion variance(true);
  const Vector v{1.0, 3.0};  // mean 2, deviations ±1
  EXPECT_DOUBLE_EQ(variance.Value(v), 1.0);
  EXPECT_DOUBLE_EQ(stdev.Value(v), 1.0);
}

TEST(DispersionTest, ConstantVectorIsZero) {
  CoordinateDispersion stdev(false);
  EXPECT_DOUBLE_EQ(stdev.Value(Vector{4.0, 4.0, 4.0}), 0.0);
}

TEST(DispersionTest, ShiftInvariance) {
  CoordinateDispersion stdev(false);
  const Vector v{1.0, 5.0, 3.0};
  Vector shifted = v;
  for (int j = 0; j < 3; ++j) shifted[j] += 100.0;
  EXPECT_NEAR(stdev.Value(v), stdev.Value(shifted), 1e-12);
}

TEST(DispersionTest, HomogeneityDegrees) {
  double degree = 0.0;
  EXPECT_TRUE(CoordinateDispersion(false).HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 1.0);
  EXPECT_TRUE(CoordinateDispersion(true).HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 2.0);
  // f(k·v) = k^α f(v) numerically:
  CoordinateDispersion stdev(false);
  const Vector v{1.0, 5.0, 3.0};
  EXPECT_NEAR(stdev.Value(v * 7.0), 7.0 * stdev.Value(v), 1e-9);
}

TEST(DispersionTest, ExactDistanceToSurface) {
  CoordinateDispersion stdev(false);
  const Vector v{1.0, 3.0};  // stdev 1
  // Surface stdev = 3: must move √d·|1−3| = 2√2 in L2.
  EXPECT_NEAR(stdev.DistanceToSurface(v, 3.0), 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(DispersionTest, RangeOverBallExactOnAxis) {
  CoordinateDispersion stdev(false);
  const Vector c{0.0, 2.0};  // stdev 1, d = 2
  const Interval range = stdev.RangeOverBall(Ball(c, std::sqrt(2.0)));
  EXPECT_NEAR(range.lo, 0.0, 1e-9);
  EXPECT_NEAR(range.hi, 2.0, 1e-9);
}

// ----------------------------------------------------------------- linear --

TEST(LinearTest, ValueAndGradient) {
  LinearFunction f(Vector{2.0, -1.0}, 3.0);
  EXPECT_DOUBLE_EQ(f.Value(Vector{1.0, 1.0}), 4.0);
  EXPECT_EQ(f.Gradient(Vector{0.0, 0.0}), (Vector{2.0, -1.0}));
}

TEST(LinearTest, ExactRange) {
  LinearFunction f(Vector{3.0, 4.0});
  const Interval range = f.RangeOverBall(Ball(Vector{0.0, 0.0}, 1.0));
  EXPECT_DOUBLE_EQ(range.lo, -5.0);
  EXPECT_DOUBLE_EQ(range.hi, 5.0);
}

TEST(LinearTest, ExactSurfaceDistance) {
  LinearFunction f(Vector{3.0, 4.0});
  EXPECT_DOUBLE_EQ(f.DistanceToSurface(Vector{0.0, 0.0}, 10.0), 2.0);
}

TEST(LinearTest, CoordinateSumFactory) {
  auto f = LinearFunction::CoordinateSum(3);
  EXPECT_DOUBLE_EQ(f->Value(Vector{1.0, 2.0, 3.0}), 6.0);
}

TEST(LinearTest, HomogeneityOnlyWithoutBias) {
  double degree = 0.0;
  EXPECT_TRUE(LinearFunction(Vector{1.0, 1.0}).HomogeneityDegree(&degree));
  EXPECT_FALSE(LinearFunction(Vector{1.0}, 2.0).HomogeneityDegree(&degree));
}

// ------------------------------------------------------------------- join --

TEST(InnerProductTest, Value) {
  InnerProductJoin f(4);
  EXPECT_DOUBLE_EQ(f.Value(Vector{1.0, 2.0, 3.0, 4.0}), 1 * 3.0 + 2 * 4.0);
}

TEST(InnerProductTest, GradientSwapsHalves) {
  InnerProductJoin f(4);
  const Vector grad = f.Gradient(Vector{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(grad, (Vector{3.0, 4.0, 1.0, 2.0}));
}

TEST(InnerProductTest, Homogeneity) {
  InnerProductJoin f(2);
  double degree = 0.0;
  EXPECT_TRUE(f.HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 2.0);
  EXPECT_NEAR(f.Value(Vector{3.0, 5.0} * 2.0), 4.0 * f.Value(Vector{3.0, 5.0}),
              1e-12);
}

// ------------------------------------------------------------ clone names --

TEST(FunctionTest, CloneKeepsName) {
  JeffreyDivergence jd(Vector{1.0, 1.0});
  ChiSquare chi(100.0);
  EXPECT_EQ(jd.Clone()->name(), "jeffrey_divergence");
  EXPECT_EQ(chi.Clone()->name(), "chi_square");
  EXPECT_EQ(L2Norm::SelfJoinSize()->name(), "self_join_size");
}

}  // namespace
}  // namespace sgm
