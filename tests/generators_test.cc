#include <cmath>

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "data/reuters_like.h"
#include "data/synthetic.h"

namespace sgm {
namespace {

template <typename Generator, typename Config>
void ExpectDeterministic(const Config& config) {
  Generator a(config), b(config);
  std::vector<Vector> va, vb;
  for (int t = 0; t < 20; ++t) {
    a.Advance(&va);
    b.Advance(&vb);
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i], vb[i]) << "site " << i << " cycle " << t;
    }
  }
}

template <typename Generator>
void ExpectStepNormRespected(Generator* gen, int cycles) {
  std::vector<Vector> prev, cur;
  gen->Advance(&prev);
  const double bound = gen->max_step_norm() + 1e-9;
  for (int t = 0; t < cycles; ++t) {
    gen->Advance(&cur);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      EXPECT_LE(cur[i].DistanceTo(prev[i]), bound)
          << "site " << i << " cycle " << t;
    }
    prev = cur;
  }
}

// ------------------------------------------------------------- synthetic --

TEST(SyntheticTest, DimensionsAndSites) {
  SyntheticDriftConfig config;
  config.num_sites = 7;
  config.dim = 5;
  SyntheticDriftGenerator gen(config);
  std::vector<Vector> locals;
  gen.Advance(&locals);
  ASSERT_EQ(locals.size(), 7u);
  EXPECT_EQ(locals[0].dim(), 5u);
}

TEST(SyntheticTest, Deterministic) {
  SyntheticDriftConfig config;
  config.num_sites = 5;
  ExpectDeterministic<SyntheticDriftGenerator>(config);
}

TEST(SyntheticTest, SeedChangesStream) {
  SyntheticDriftConfig a_config, b_config;
  b_config.seed = 999;
  SyntheticDriftGenerator a(a_config), b(b_config);
  std::vector<Vector> va, vb;
  a.Advance(&va);
  b.Advance(&vb);
  EXPECT_NE(va[0], vb[0]);
}

TEST(SyntheticTest, StepNormRespected) {
  SyntheticDriftConfig config;
  config.num_sites = 10;
  SyntheticDriftGenerator gen(config);
  ExpectStepNormRespected(&gen, 100);
}

TEST(SyntheticTest, GlobalOscillationMovesAverage) {
  SyntheticDriftConfig config;
  config.num_sites = 50;
  config.global_period = 100;
  config.step_norm = 0.05;
  SyntheticDriftGenerator gen(config);
  std::vector<Vector> locals;
  double lo = 1e9, hi = -1e9;
  for (int t = 0; t < 200; ++t) {
    gen.Advance(&locals);
    const double mean0 = Mean(locals)[0];
    lo = std::min(lo, mean0);
    hi = std::max(hi, mean0);
  }
  EXPECT_GT(hi - lo, 0.5);  // shared drift is visible in the global average
}

// --------------------------------------------------------------- reuters --

TEST(ReutersTest, VectorShape) {
  ReutersLikeConfig config;
  config.num_sites = 10;
  config.window = 50;
  ReutersLikeGenerator gen(config);
  std::vector<Vector> locals;
  gen.Advance(&locals);
  ASSERT_EQ(locals.size(), 10u);
  EXPECT_EQ(locals[0].dim(), 3u);
}

TEST(ReutersTest, CountsWithinWindow) {
  ReutersLikeConfig config;
  config.num_sites = 5;
  config.window = 40;
  ReutersLikeGenerator gen(config);
  std::vector<Vector> locals;
  for (int t = 0; t < 100; ++t) {
    gen.Advance(&locals);
    for (const Vector& v : locals) {
      EXPECT_GE(v[0], 0.0);
      EXPECT_LE(v.Sum(), 40.0);
    }
  }
}

TEST(ReutersTest, Deterministic) {
  ReutersLikeConfig config;
  config.num_sites = 4;
  config.window = 30;
  ExpectDeterministic<ReutersLikeGenerator>(config);
}

TEST(ReutersTest, StepNormRespected) {
  ReutersLikeConfig config;
  config.num_sites = 6;
  config.window = 30;
  ReutersLikeGenerator gen(config);
  ExpectStepNormRespected(&gen, 200);
}

TEST(ReutersTest, RelevanceStaysInUnitInterval) {
  ReutersLikeConfig config;
  config.num_sites = 3;
  config.window = 20;
  config.burst_spacing = 50;
  config.burst_length = 30;
  ReutersLikeGenerator gen(config);
  std::vector<Vector> locals;
  bool saw_high = false;
  for (int t = 0; t < 600; ++t) {
    gen.Advance(&locals);
    EXPECT_GE(gen.relevance(), 0.0);
    EXPECT_LE(gen.relevance(), 1.0);
    if (gen.relevance() > 0.8) saw_high = true;
  }
  EXPECT_TRUE(saw_high);  // bursts actually occur
}

TEST(ReutersTest, BurstsRaiseCooccurrence) {
  ReutersLikeConfig config;
  config.num_sites = 40;
  config.window = 100;
  config.burst_spacing = 10;  // burst almost immediately and often
  config.burst_length = 400;
  ReutersLikeGenerator burst_gen(config);

  ReutersLikeConfig calm = config;
  calm.burst_spacing = 1000000;  // effectively never bursts
  calm.burst_length = 1;
  ReutersLikeGenerator calm_gen(calm);

  std::vector<Vector> locals;
  double burst_cooc = 0.0, calm_cooc = 0.0;
  for (int t = 0; t < 400; ++t) {
    burst_gen.Advance(&locals);
    burst_cooc += Mean(locals)[0];
    calm_gen.Advance(&locals);
    calm_cooc += Mean(locals)[0];
  }
  EXPECT_GT(burst_cooc, calm_cooc * 1.2);
}

// ---------------------------------------------------------------- jester --

TEST(JesterTest, VectorShape) {
  JesterLikeConfig config;
  config.num_sites = 8;
  config.window = 50;
  config.num_buckets = 12;
  JesterLikeGenerator gen(config);
  std::vector<Vector> locals;
  gen.Advance(&locals);
  ASSERT_EQ(locals.size(), 8u);
  EXPECT_EQ(locals[0].dim(), 12u);
}

TEST(JesterTest, HistogramMassEqualsWindowWhenWarm) {
  JesterLikeConfig config;
  config.num_sites = 5;
  config.window = 60;
  JesterLikeGenerator gen(config);  // constructor warms windows up
  std::vector<Vector> locals;
  gen.Advance(&locals);
  for (const Vector& v : locals) EXPECT_DOUBLE_EQ(v.Sum(), 60.0);
}

TEST(JesterTest, Deterministic) {
  JesterLikeConfig config;
  config.num_sites = 4;
  config.window = 30;
  ExpectDeterministic<JesterLikeGenerator>(config);
}

TEST(JesterTest, StepNormRespected) {
  JesterLikeConfig config;
  config.num_sites = 6;
  config.window = 40;
  JesterLikeGenerator gen(config);
  ExpectStepNormRespected(&gen, 200);
}

TEST(JesterTest, MoodShiftsMigrateHistogram) {
  JesterLikeConfig config;
  config.num_sites = 30;
  config.window = 60;
  config.mood_period = 200;
  config.mood_amplitude = 6.0;
  JesterLikeGenerator gen(config);
  std::vector<Vector> locals;
  gen.Advance(&locals);
  const Vector initial = Mean(locals);
  // Run half a mood period: the average histogram must move substantially.
  for (int t = 0; t < 100; ++t) gen.Advance(&locals);
  const Vector later = Mean(locals);
  EXPECT_GT(initial.DistanceTo(later), 2.0);
}

}  // namespace
}  // namespace sgm
