// Behavioural tests of the three competitor protocols: GM, BGM, PGM.

#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "functions/linear.h"
#include "gm/bgm.h"
#include "gm/gm.h"
#include "gm/pgm.h"
#include "sim/network.h"
#include "test_util.h"

namespace sgm {
namespace {

// --------------------------------------------------------------------- GM --

TEST(GmTest, QuietStreamNeverSyncs) {
  // Sites stay put: no drift, no alarms, only the init sync messages.
  std::vector<std::vector<Vector>> frames(
      5, {Vector{1.0, 0.0}, Vector{0.0, 1.0}});
  ScriptedSource source(std::move(frames), 1.0);
  L2Norm f(false);
  GeometricMonitor gm(f, 10.0, source.max_step_norm());
  const RunResult result = Simulate(&source, &gm, 4);
  EXPECT_EQ(result.metrics.full_syncs(), 0);
  EXPECT_EQ(result.metrics.total_messages(), 3);  // N + 1 at init
}

TEST(GmTest, DetectsTrueCrossing) {
  // Both sites jump outward: ‖mean‖ goes 1 → 5, crossing T = 3.
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  frames.push_back({Vector{5.0, 0.0}, Vector{5.0, 0.0}});
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  GeometricMonitor gm(f, 3.0, source.max_step_norm());
  const RunResult result = Simulate(&source, &gm, 3);
  EXPECT_GE(result.metrics.full_syncs(), 1);
  EXPECT_TRUE(gm.BelievesAbove());
  EXPECT_EQ(result.metrics.false_negative_cycles(), 0);
}

TEST(GmTest, SymmetricDriftCausesFalsePositive) {
  // Sites drift in opposite directions: the average never moves, but each
  // local ball reaches the surface — the classic GM FP.
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  frames.push_back({Vector{4.0, 0.0}, Vector{-2.0, 0.0}});
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  GeometricMonitor gm(f, 2.5, source.max_step_norm());
  const RunResult result = Simulate(&source, &gm, 2);
  EXPECT_GE(result.metrics.false_positives(), 1);
  EXPECT_FALSE(gm.BelievesAbove());
}

// GM with exact enclosures must be FN-free on a stochastic workload.
TEST(GmTest, NoFalseNegativesOnSyntheticStream) {
  SyntheticDriftConfig config;
  config.num_sites = 20;
  config.dim = 3;
  config.seed = 77;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  GeometricMonitor gm(f, 1.2, source.max_step_norm());
  const RunResult result = Simulate(&source, &gm, 400);
  EXPECT_EQ(result.metrics.false_negative_cycles(), 0);
  EXPECT_GT(result.true_crossing_cycles, 0);  // threshold actually active
}

// -------------------------------------------------------------------- BGM --

TEST(BgmTest, OppositeDriftsBalanceWithoutFullSync) {
  // One site violates, the other holds the exact opposite drift: balancing
  // must cancel them and avoid the full synchronization.
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  frames.push_back({Vector{4.0, 0.0}, Vector{-2.0, 0.0}});
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  BalancedGeometricMonitor bgm(f, 2.5, source.max_step_norm());
  const RunResult result = Simulate(&source, &bgm, 2);
  EXPECT_EQ(result.metrics.full_syncs(), 0);
  EXPECT_GE(result.metrics.partial_resolutions(), 1);
  EXPECT_EQ(result.metrics.false_negative_cycles(), 0);
}

TEST(BgmTest, CommonDirectionDriftForcesFullSync) {
  // Both sites push the same way (a true crossing): balancing cannot help.
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  frames.push_back({Vector{5.0, 0.0}, Vector{5.0, 0.0}});
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  BalancedGeometricMonitor bgm(f, 3.0, source.max_step_norm());
  const RunResult result = Simulate(&source, &bgm, 2);
  EXPECT_GE(result.metrics.full_syncs(), 1);
  EXPECT_TRUE(bgm.BelievesAbove());
}

TEST(BgmTest, NeverWorseThanContinuousCollection) {
  SyntheticDriftConfig config;
  config.num_sites = 15;
  config.dim = 3;
  config.seed = 31;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  BalancedGeometricMonitor bgm(f, 2.5, source.max_step_norm());
  const long cycles = 200;
  const RunResult result = Simulate(&source, &bgm, cycles);
  EXPECT_EQ(result.metrics.false_negative_cycles(), 0);
  // Sanity ceiling: balancing may probe every site each cycle, but not more
  // than ~2 vector messages per site-cycle.
  EXPECT_LE(result.metrics.site_messages(),
            2 * config.num_sites * (cycles + 1));
}

// -------------------------------------------------------------------- PGM --

TEST(PgmTest, PerfectLinearMotionNeedsNoSync) {
  // All sites move with constant velocity: after the initial model fit the
  // velocity predictor is exact, deviations stay zero, no alarms fire.
  std::vector<std::vector<Vector>> frames;
  for (int t = 0; t < 40; ++t) {
    const double x = 0.1 * t;
    frames.push_back({Vector{1.0 + x, 0.0}, Vector{1.0 - x, 0.0}});
  }
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  PredictionGeometricMonitor pgm(f, 50.0, source.max_step_norm(),
                                 /*history=*/4);
  // Warm the predictor: first sync sees only one frame (zero velocity), so
  // allow an early re-sync, then demand silence.
  const RunResult result = Simulate(&source, &pgm, 30);
  EXPECT_LE(result.metrics.full_syncs(), 2);
}

TEST(PgmTest, PredictionBeliefTracksMovingEstimate) {
  // Shared constant velocity carries the average across T without any site
  // deviating from its prediction; PGM's belief must follow e_pred.
  std::vector<std::vector<Vector>> frames;
  for (int t = 0; t < 60; ++t) {
    const double x = 1.0 + 0.2 * t;
    frames.push_back({Vector{x, 0.0}, Vector{x, 0.0}});
  }
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  PredictionGeometricMonitor pgm(f, 4.0, source.max_step_norm(),
                                 /*history=*/4);
  const RunResult result = Simulate(&source, &pgm, 50);
  EXPECT_TRUE(pgm.BelievesAbove());
  // The prediction-based belief keeps FN cycles rare even with few syncs.
  EXPECT_LE(result.metrics.false_negative_cycles(), 10);
}

TEST(PgmTest, StaticModelDegeneratesToGm) {
  // With the static predictor, e_pred = e and deviations = drifts: PGM's
  // decisions (and costs) must coincide with plain GM's on any stream.
  SyntheticDriftConfig config;
  config.num_sites = 25;
  config.dim = 3;
  config.seed = 99;
  const L2Norm f;
  const double T = 2.4;

  SyntheticDriftGenerator s1(config), s2(config);
  GeometricMonitor gm(f, T, s1.max_step_norm());
  PredictionGeometricMonitor pgm(f, T, s2.max_step_norm(), /*history=*/5,
                                 std::make_unique<StaticModel>());
  const RunResult r_gm = Simulate(&s1, &gm, 250);
  const RunResult r_pgm = Simulate(&s2, &pgm, 250);
  EXPECT_EQ(r_gm.metrics.total_messages(), r_pgm.metrics.total_messages());
  EXPECT_EQ(r_gm.metrics.full_syncs(), r_pgm.metrics.full_syncs());
  EXPECT_EQ(r_gm.metrics.false_positives(), r_pgm.metrics.false_positives());
}

TEST(PgmTest, UnpredictableSiteForcesSyncs) {
  // One erratic site oscillates across the threshold region: no velocity/
  // acceleration fit can track it, so PGM must keep syncing.
  std::vector<std::vector<Vector>> frames;
  for (int t = 0; t < 30; ++t) {
    const double jitter = (t % 2 == 1) ? 2.0 : 0.0;
    frames.push_back({Vector{1.0 + jitter, 0.0}, Vector{1.0, 0.0}});
  }
  ScriptedSource source(std::move(frames), 10.0);
  L2Norm f(false);
  PredictionGeometricMonitor pgm(f, 1.9, source.max_step_norm(),
                                 /*history=*/4);
  const RunResult result = Simulate(&source, &pgm, 25);
  EXPECT_GE(result.metrics.full_syncs(), 3);
}

}  // namespace
}  // namespace sgm
