#include "geometry/halfspace.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(HalfspaceTest, NormalizesInput) {
  Halfspace h(Vector{3.0, 4.0}, 10.0);
  EXPECT_NEAR(h.normal().Norm(), 1.0, 1e-12);
  EXPECT_NEAR(h.offset(), 2.0, 1e-12);
}

TEST(HalfspaceTest, ContainsRespectsInequality) {
  Halfspace h(Vector{1.0, 0.0}, 1.0);  // x ≤ 1
  EXPECT_TRUE(h.Contains(Vector{0.0, 5.0}));
  EXPECT_TRUE(h.Contains(Vector{1.0, -2.0}));  // boundary
  EXPECT_FALSE(h.Contains(Vector{1.5, 0.0}));
}

TEST(HalfspaceTest, SignedDistanceIsEuclidean) {
  Halfspace h(Vector{0.0, 2.0}, 4.0);  // y ≤ 2 after normalization
  EXPECT_NEAR(h.SignedDistance(Vector{7.0, 5.0}), 3.0, 1e-12);
  EXPECT_NEAR(h.SignedDistance(Vector{-1.0, 0.0}), -2.0, 1e-12);
  EXPECT_NEAR(h.SignedDistance(Vector{0.0, 2.0}), 0.0, 1e-12);
}

TEST(HalfspaceTest, SupportingSeparates) {
  const Vector inside{0.0, 0.0};
  const Vector boundary{2.0, 0.0};
  Halfspace h = Halfspace::Supporting(inside, boundary);
  EXPECT_TRUE(h.Contains(inside));
  EXPECT_NEAR(h.SignedDistance(boundary), 0.0, 1e-12);
  EXPECT_FALSE(h.Contains(Vector{3.0, 0.0}));
}

TEST(HalfspaceTest, SignedDistanceMatchesProjection) {
  // |signed distance| equals the distance to the projected boundary point.
  Halfspace h(Vector{1.0, 1.0}, 2.0);
  const Vector p{3.0, 3.0};
  const double sd = h.SignedDistance(p);
  Vector projected = p;
  projected.Axpy(-sd, h.normal());
  EXPECT_NEAR(h.SignedDistance(projected), 0.0, 1e-12);
  EXPECT_NEAR(p.DistanceTo(projected), std::abs(sd), 1e-12);
}

}  // namespace
}  // namespace sgm
