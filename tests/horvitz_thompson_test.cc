#include "estimators/horvitz_thompson.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "estimators/sampling.h"

namespace sgm {
namespace {

TEST(HtVectorTest, EmptySampleReturnsE) {
  HtVectorEstimator est(100, 3);
  const Vector e{1.0, 2.0, 3.0};
  EXPECT_EQ(est.Estimate(e), e);
  EXPECT_EQ(est.sample_size(), 0);
}

TEST(HtVectorTest, SingleFullProbabilitySample) {
  // One site, g = 1: v̂ = e + Δv/N exactly.
  HtVectorEstimator est(10, 2);
  est.AddSample(Vector{10.0, -20.0}, 1.0);
  const Vector v_hat = est.Estimate(Vector{0.0, 0.0});
  EXPECT_EQ(v_hat, (Vector{1.0, -2.0}));
}

TEST(HtVectorTest, InverseProbabilityWeighting) {
  HtVectorEstimator est(10, 1);
  est.AddSample(Vector{2.0}, 0.5);  // weighted to 4.0
  EXPECT_DOUBLE_EQ(est.Estimate(Vector{0.0})[0], 0.4);
}

TEST(HtVectorTest, ResetClears) {
  HtVectorEstimator est(10, 1);
  est.AddSample(Vector{5.0}, 1.0);
  est.Reset();
  EXPECT_EQ(est.sample_size(), 0);
  EXPECT_DOUBLE_EQ(est.Estimate(Vector{0.0})[0], 0.0);
}

TEST(HtScalarTest, BasicWeighting) {
  HtScalarEstimator est(4);
  est.AddSample(-2.0, 0.5);
  est.AddSample(1.0, 1.0);
  // (−4 + 1) / 4 = −0.75.
  EXPECT_DOUBLE_EQ(est.Estimate(), -0.75);
  EXPECT_EQ(est.sample_size(), 2);
}

TEST(HtScalarTest, EmptyIsZero) {
  HtScalarEstimator est(4);
  EXPECT_EQ(est.Estimate(), 0.0);
}

// Lemma 1(a) statistically: over many independent sampling draws with the
// paper's g_i, the mean of v̂ converges to the true global average.
TEST(HtVectorTest, UnbiasednessUnderPaperSampling) {
  const int num_sites = 200;
  const std::size_t dim = 3;
  const double delta = 0.1, U = 12.0;
  Rng data_rng(5);

  // Fixed population of drifts.
  std::vector<Vector> drifts;
  Vector true_drift_mean(dim);
  for (int i = 0; i < num_sites; ++i) {
    Vector d(dim);
    for (std::size_t j = 0; j < dim; ++j) d[j] = data_rng.NextDouble(-3.0, 3.0);
    drifts.push_back(d);
    true_drift_mean += d;
  }
  true_drift_mean /= num_sites;

  Rng coin_rng(6);
  const int rounds = 4000;
  Vector mean_estimate(dim);
  for (int r = 0; r < rounds; ++r) {
    HtVectorEstimator est(num_sites, dim);
    for (int i = 0; i < num_sites; ++i) {
      const double g = SamplingProbability(delta, U, num_sites,
                                           drifts[i].Norm());
      if (coin_rng.NextBernoulli(g)) est.AddSample(drifts[i], g);
    }
    mean_estimate += est.DriftEstimate();
  }
  mean_estimate /= rounds;
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(mean_estimate[j], true_drift_mean[j], 0.05) << "dim " << j;
  }
}

// Scalar counterpart (Corollary 2): D̂_C is unbiased for D_C.
TEST(HtScalarTest, UnbiasednessUnderCvSampling) {
  const int num_sites = 200;
  const double delta = 0.1, U = 9.0;
  Rng data_rng(7);
  std::vector<double> distances;
  double true_mean = 0.0;
  for (int i = 0; i < num_sites; ++i) {
    const double d = data_rng.NextDouble(-4.0, 2.0);
    distances.push_back(d);
    true_mean += d;
  }
  true_mean /= num_sites;

  Rng coin_rng(8);
  const int rounds = 6000;
  double mean_estimate = 0.0;
  for (int r = 0; r < rounds; ++r) {
    HtScalarEstimator est(num_sites);
    for (int i = 0; i < num_sites; ++i) {
      const double g = SamplingProbabilityCV(delta, U, num_sites, distances[i]);
      if (coin_rng.NextBernoulli(g)) est.AddSample(distances[i], g);
    }
    mean_estimate += est.Estimate();
  }
  mean_estimate /= rounds;
  EXPECT_NEAR(mean_estimate, true_mean, 0.06);
}

// The empirical estimation error should respect the (ε, δ) guarantee:
// ‖v̂ − v‖ ≤ ε in (well over) a 1 − δ fraction of draws.
TEST(HtVectorTest, EpsilonDeltaGuaranteeEmpirically) {
  const int num_sites = 400;
  const std::size_t dim = 4;
  const double delta = 0.1;
  Rng data_rng(9);

  std::vector<Vector> drifts;
  Vector truth(dim);
  double max_norm = 0.0;
  for (int i = 0; i < num_sites; ++i) {
    Vector d(dim);
    for (std::size_t j = 0; j < dim; ++j) d[j] = data_rng.NextDouble(-2.0, 2.0);
    drifts.push_back(d);
    truth += d;
    max_norm = std::max(max_norm, d.Norm());
  }
  truth /= num_sites;
  const double U = max_norm * 1.01;  // a valid drift cap
  const double epsilon = (1.0 + std::sqrt(std::log(1.0 / delta))) /
                         (2.0 * std::log(1.0 / delta)) * U;

  Rng coin_rng(10);
  const int rounds = 2000;
  int violations = 0;
  for (int r = 0; r < rounds; ++r) {
    HtVectorEstimator est(num_sites, dim);
    for (int i = 0; i < num_sites; ++i) {
      const double g = SamplingProbability(delta, U, num_sites,
                                           drifts[i].Norm());
      if (coin_rng.NextBernoulli(g)) est.AddSample(drifts[i], g);
    }
    if (est.DriftEstimate().DistanceTo(truth) > epsilon) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations) / rounds, delta);
}

}  // namespace
}  // namespace sgm
