// Tests for the embedded loopback HTTP ops endpoint (obs/http_exporter.h):
// route dispatch, content types, 404/405 handling, dynamic handler state,
// repeated sequential requests and clean shutdown. Exercised through the
// same HttpGet client the CI scrapes and `obs_report --watch` use.

#include "obs/http_exporter.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sgm {
namespace {

TEST(HttpExporterTest, ServesRegisteredRoute) {
  HttpExporter http;
  http.Route("/healthz", "application/json",
             [] { return std::string("{\"ok\":true}"); });
  ASSERT_TRUE(http.Start(0).ok());
  ASSERT_GT(http.port(), 0);
  std::string body;
  int status = 0;
  ASSERT_TRUE(HttpGet(http.port(), "/healthz", &body, &status).ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"ok\":true}");
}

TEST(HttpExporterTest, UnknownRouteIs404) {
  HttpExporter http;
  http.Route("/metrics", "text/plain", [] { return std::string("x 1\n"); });
  ASSERT_TRUE(http.Start(0).ok());
  std::string body;
  int status = 0;
  ASSERT_TRUE(HttpGet(http.port(), "/nope", &body, &status).ok());
  EXPECT_EQ(status, 404);
}

TEST(HttpExporterTest, HandlerSeesLiveState) {
  // The handler runs per request, so a scrape observes the counter as it
  // is *now* — the property the /metrics endpoint depends on.
  std::atomic<long> counter{0};
  HttpExporter http;
  http.Route("/metrics", "text/plain",
             [&counter] { return std::to_string(counter.load()); });
  ASSERT_TRUE(http.Start(0).ok());
  std::string body;
  ASSERT_TRUE(HttpGet(http.port(), "/metrics", &body).ok());
  EXPECT_EQ(body, "0");
  counter = 41;
  ASSERT_TRUE(HttpGet(http.port(), "/metrics", &body).ok());
  EXPECT_EQ(body, "41");
}

TEST(HttpExporterTest, ManySequentialRequests) {
  HttpExporter http;
  http.Route("/healthz", "application/json",
             [] { return std::string("{}"); });
  ASSERT_TRUE(http.Start(0).ok());
  for (int i = 0; i < 50; ++i) {
    std::string body;
    int status = 0;
    ASSERT_TRUE(HttpGet(http.port(), "/healthz", &body, &status).ok());
    ASSERT_EQ(status, 200);
  }
  EXPECT_GE(http.requests_served(), 50);
}

TEST(HttpExporterTest, ConcurrentClientsAllGetAnswers) {
  // The server is deliberately serial (one connection at a time); clients
  // arriving together queue on the listen backlog and all complete.
  HttpExporter http;
  http.Route("/healthz", "application/json",
             [] { return std::string("{\"ok\":true}"); });
  ASSERT_TRUE(http.Start(0).ok());
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&http, &successes] {
      std::string body;
      int status = 0;
      if (HttpGet(http.port(), "/healthz", &body, &status, 5000).ok() &&
          status == 200 && body == "{\"ok\":true}") {
        ++successes;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(successes.load(), 8);
}

TEST(HttpExporterTest, StopIsIdempotentAndReleasesPort) {
  HttpExporter http;
  http.Route("/x", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(http.Start(0).ok());
  const int port = http.port();
  http.Stop();
  http.Stop();
  EXPECT_FALSE(http.running());
  std::string body;
  EXPECT_FALSE(HttpGet(port, "/x", &body).ok());
}

TEST(HttpExporterTest, GetAgainstDeadPortFailsCleanly) {
  // Port 1 is privileged and unbound in the test environment: the client
  // must report a transport error, not hang or crash.
  std::string body;
  EXPECT_FALSE(HttpGet(1, "/healthz", &body, nullptr, 500).ok());
}

}  // namespace
}  // namespace sgm
