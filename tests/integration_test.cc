// End-to-end miniatures of the paper's experiments: every protocol on the
// two synthetic dataset stand-ins, checking the qualitative orderings the
// paper's evaluation establishes.

#include <memory>

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "data/reuters_like.h"
#include "functions/chi_square.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/bgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/pgm.h"
#include "gm/sgm.h"
#include "sim/network.h"

namespace sgm {
namespace {

JesterLikeConfig SmallJester(int num_sites) {
  JesterLikeConfig config;
  config.num_sites = num_sites;
  config.window = 60;
  config.num_buckets = 12;
  config.seed = 2468;
  return config;
}

TEST(IntegrationTest, JesterLinfAllProtocolsRun) {
  const int n = 80;
  const long cycles = 300;
  const double T = 2.5;
  const LInfDistance f(Vector(12));

  std::vector<std::unique_ptr<Protocol>> protocols;
  {
    JesterLikeGenerator probe(SmallJester(n));
    const double step = probe.max_step_norm();
    protocols.push_back(std::make_unique<GeometricMonitor>(f, T, step));
    protocols.push_back(std::make_unique<BalancedGeometricMonitor>(f, T, step));
    protocols.push_back(
        std::make_unique<PredictionGeometricMonitor>(f, T, step));
    SgmOptions sgm_options;
    protocols.push_back(
        std::make_unique<SamplingGeometricMonitor>(f, T, step, sgm_options));
    CvsgmOptions cv_options;
    protocols.push_back(
        std::make_unique<CvSamplingMonitor>(f, T, step, cv_options));
  }

  for (auto& protocol : protocols) {
    JesterLikeGenerator source(SmallJester(n));
    const RunResult result = Simulate(&source, protocol.get(), cycles);
    EXPECT_EQ(result.cycles, cycles) << protocol->name();
    EXPECT_GT(result.metrics.total_messages(), 0) << protocol->name();
    // Sanity ceiling: nothing should massively exceed continuous collection.
    EXPECT_LE(result.metrics.site_messages(), 3 * n * (cycles + 1))
        << protocol->name();
  }
}

TEST(IntegrationTest, SgmBeatsGmOnJesterLinf) {
  const int n = 200;
  const long cycles = 400;
  const double T = 2.0;
  const LInfDistance f(Vector(12));

  JesterLikeGenerator s1(SmallJester(n)), s2(SmallJester(n));
  GeometricMonitor gm(f, T, s1.max_step_norm());
  SgmOptions options;
  SamplingGeometricMonitor sgm(f, T, s2.max_step_norm(), options);
  const RunResult r_gm = Simulate(&s1, &gm, cycles);
  const RunResult r_sgm = Simulate(&s2, &sgm, cycles);

  EXPECT_LT(r_sgm.metrics.total_messages(), r_gm.metrics.total_messages());
  EXPECT_LT(r_sgm.metrics.SiteMessagesPerUpdate(n),
            r_gm.metrics.SiteMessagesPerUpdate(n));
  EXPECT_EQ(r_gm.metrics.false_negative_cycles(), 0);  // GM is exact
}

TEST(IntegrationTest, ReutersChiSquareSgmBeatsGm) {
  ReutersLikeConfig config;
  config.num_sites = 50;
  config.window = 100;
  config.seed = 1357;
  const long cycles = 500;
  const ChiSquare f(100.0);
  const double T = 1.0;

  ReutersLikeGenerator s1(config), s2(config);
  GeometricMonitor gm(f, T, s1.max_step_norm());
  SgmOptions options;
  SamplingGeometricMonitor sgm(f, T, s2.max_step_norm(), options);
  const RunResult r_gm = Simulate(&s1, &gm, cycles);
  const RunResult r_sgm = Simulate(&s2, &sgm, cycles);
  EXPECT_LE(r_sgm.metrics.total_messages(), r_gm.metrics.total_messages());
}

TEST(IntegrationTest, SgmPerSiteCostRoughlyFlatInN) {
  // Fig-13 shape: GM's per-site cost grows toward 1 msg/update with N while
  // SGM's stays low. Compare the growth factors between two scales.
  const LInfDistance f(Vector(12));
  const double T = 2.0;
  const long cycles = 300;

  auto per_site = [&](int n, bool sampling) {
    JesterLikeGenerator source(SmallJester(n));
    std::unique_ptr<Protocol> protocol;
    if (sampling) {
      SgmOptions options;
      protocol = std::make_unique<SamplingGeometricMonitor>(
          f, T, source.max_step_norm(), options);
    } else {
      protocol = std::make_unique<GeometricMonitor>(f, T,
                                                    source.max_step_norm());
    }
    return Simulate(&source, protocol.get(), cycles)
        .metrics.SiteMessagesPerUpdate(n);
  };

  const double gm_small = per_site(50, false);
  const double gm_large = per_site(250, false);
  const double sgm_large = per_site(250, true);
  EXPECT_LT(sgm_large, gm_large);
  EXPECT_LT(sgm_large, std::max(gm_small, 0.02));
}

TEST(IntegrationTest, RunsAreReproducible) {
  const ChiSquare f(100.0);
  ReutersLikeConfig config;
  config.num_sites = 30;
  config.window = 80;

  auto run_once = [&]() {
    ReutersLikeGenerator source(config);
    SgmOptions options;
    SamplingGeometricMonitor sgm(f, 1.0, source.max_step_norm(), options);
    const RunResult r = Simulate(&source, &sgm, 300);
    return std::make_pair(r.metrics.total_messages(),
                          r.metrics.false_negative_cycles());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, JesterJdWorkloadExercisesSyncs) {
  JesterLikeConfig config = SmallJester(60);
  JesterLikeGenerator source(config);
  const JeffreyDivergence f(Vector(12, 5.0));
  SgmOptions options;
  SamplingGeometricMonitor sgm(f, 4.0, source.max_step_norm(), options);
  const RunResult result = Simulate(&source, &sgm, 400);
  // The JD workload must neither be trivially silent nor sync every cycle.
  EXPECT_GT(result.metrics.full_syncs() + result.metrics.partial_resolutions(),
            0);
  EXPECT_LT(result.metrics.full_syncs(), result.cycles);
}

}  // namespace
}  // namespace sgm
