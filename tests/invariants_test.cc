// Unit tests of the InvariantChecker and the stress replay-token plumbing:
// zone tolerance, bounded self-correction runs, accounting sanity, transport
// parity, and the violation → replay-command contract.

#include <string>

#include <gtest/gtest.h>

#include "sim/invariants.h"
#include "sim/stress.h"

namespace sgm {
namespace {

TEST(InvariantCheckerTest, ExactContractFlagsFirstDisagreement) {
  InvariantChecker checker{InvariantOptions{}};  // zone 0, run 0
  checker.CheckBelief(1, true, true, 2.0);
  EXPECT_TRUE(checker.ok());
  checker.CheckBelief(2, false, true, 2.0);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].cycle, 2);
  EXPECT_EQ(checker.violations()[0].invariant, "out-of-zone-run");
}

TEST(InvariantCheckerTest, DisagreementInsideZoneIsTolerated) {
  InvariantOptions options;
  options.zone_epsilon = 0.5;
  InvariantChecker checker(options);
  for (long cycle = 1; cycle <= 100; ++cycle) {
    checker.CheckBelief(cycle, cycle % 2 == 0, true, 0.4);  // within zone
  }
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.max_observed_run(), 0);  // zone cycles don't count
}

TEST(InvariantCheckerTest, OutOfZoneRunBoundedBySelfCorrection) {
  InvariantOptions options;
  options.zone_epsilon = 0.5;
  options.max_out_of_zone_run = 3;
  InvariantChecker checker(options);

  // A 3-cycle out-of-zone disagreement run, then self-correction: fine.
  for (long cycle = 1; cycle <= 3; ++cycle) {
    checker.CheckBelief(cycle, false, true, 2.0);
  }
  checker.CheckBelief(4, true, true, 2.0);  // agreement resets the run
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.max_observed_run(), 3);

  // A 4-cycle run exceeds the bound: flagged once, at the breaking cycle.
  for (long cycle = 5; cycle <= 10; ++cycle) {
    checker.CheckBelief(cycle, false, true, 2.0);
  }
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].cycle, 8);  // run cycles 5,6,7,8 = 4 > 3
  EXPECT_EQ(checker.max_observed_run(), 6);
}

TEST(InvariantCheckerTest, PostSyncMustBeExact) {
  InvariantOptions options;
  options.zone_epsilon = 10.0;  // belief checks would tolerate anything
  options.max_out_of_zone_run = 100;
  InvariantChecker checker(options);
  checker.CheckPostSyncExact(7, true, true);
  EXPECT_TRUE(checker.ok());
  checker.CheckPostSyncExact(9, false, true);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "post-sync-belief");
  EXPECT_EQ(checker.violations()[0].cycle, 9);
}

TEST(InvariantCheckerTest, AccountingDecompositionAndMonotonicity) {
  InvariantChecker checker{InvariantOptions{}};
  checker.CheckAccounting(1, 10, 5, 15, 15 * 16.0);
  EXPECT_TRUE(checker.ok());
  // total != site + coordinator
  checker.CheckAccounting(2, 12, 5, 18, 18 * 16.0);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "accounting-decomposition");
  // bytes below the 16-byte-per-message floor (but still monotone)
  checker.CheckAccounting(3, 14, 6, 20, 300.0);
  ASSERT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[1].invariant, "accounting-bytes-floor");
  // totals going backwards
  checker.CheckAccounting(4, 2, 1, 3, 3 * 16.0);
  ASSERT_GE(checker.violations().size(), 3u);
  EXPECT_EQ(checker.violations()[2].invariant, "accounting-monotonicity");
}

TEST(InvariantCheckerTest, TransportParityMismatchIsFlagged) {
  InvariantChecker checker{InvariantOptions{}};
  checker.CheckTransportParity(5, "bus-vs-sim", 10, 10, 7, 7, 160.0, 160.0);
  EXPECT_TRUE(checker.ok());
  checker.CheckTransportParity(6, "bus-vs-sim", 11, 10, 7, 7, 176.0, 160.0);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "transport-parity");
  EXPECT_NE(checker.violations()[0].details.find("bus-vs-sim"),
            std::string::npos);
}

TEST(InvariantCheckerTest, SummaryNamesEveryViolation) {
  InvariantChecker checker{InvariantOptions{}};
  checker.CheckBelief(3, false, true, 1.0);
  checker.CheckAccounting(4, 1, 1, 3, 48.0);
  const std::string summary = checker.Summary();
  EXPECT_NE(summary.find("out-of-zone-run"), std::string::npos);
  EXPECT_NE(summary.find("accounting-decomposition"), std::string::npos);
}

TEST(ReplayCommandTest, EncodesTheFullConfig) {
  StressConfig config;
  config.seed = 12345;
  config.protocol = StressProtocol::kCvsgm;
  config.function = StressFunction::kLinfDistance;
  config.num_sites = 10;
  config.cycles = 150;
  config.drop_probability = 0.25;
  config.max_delay_rounds = 3;
  config.sabotage_tolerance = true;
  const std::string cmd = FormatReplayCommand(config, "runtime");
  EXPECT_NE(cmd.find("--leg=runtime"), std::string::npos);
  EXPECT_NE(cmd.find("--protocol=CVSGM"), std::string::npos);
  EXPECT_NE(cmd.find("--function=linf"), std::string::npos);
  EXPECT_NE(cmd.find("--seed=12345"), std::string::npos);
  EXPECT_NE(cmd.find("--sites=10"), std::string::npos);
  EXPECT_NE(cmd.find("--cycles=150"), std::string::npos);
  EXPECT_NE(cmd.find("--drop=0.25"), std::string::npos);
  EXPECT_NE(cmd.find("--delay=3"), std::string::npos);
  EXPECT_NE(cmd.find("--sabotage"), std::string::npos);
}

TEST(ReplayCommandTest, ParsersRoundTripEnumNames) {
  for (StressProtocol p : {StressProtocol::kGm, StressProtocol::kBgm,
                           StressProtocol::kSgm, StressProtocol::kCvsgm}) {
    StressProtocol parsed;
    ASSERT_TRUE(ParseStressProtocol(ToString(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  for (StressFunction f :
       {StressFunction::kL2Norm, StressFunction::kLinfDistance}) {
    StressFunction parsed;
    ASSERT_TRUE(ParseStressFunction(ToString(f), &parsed));
    EXPECT_EQ(parsed, f);
  }
  StressProtocol p;
  EXPECT_FALSE(ParseStressProtocol("nope", &p));
}

}  // namespace
}  // namespace sgm
