// Randomized property tests of the paper's geometric lemmas themselves:
// the covering lemma of [5], Lemma 1(c), Lemma 2(a)/(b), and Lemma 4 /
// Corollary 1. These validate the math the protocols rely on, independently
// of any protocol code.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "estimators/horvitz_thompson.h"
#include "estimators/sampling.h"
#include "geometry/ball.h"
#include "geometry/convex.h"
#include "geometry/safe_zone.h"

namespace sgm {
namespace {

Vector RandomVector(std::size_t dim, double lo, double hi, Rng* rng) {
  Vector v(dim);
  for (std::size_t j = 0; j < dim; ++j) v[j] = rng->NextDouble(lo, hi);
  return v;
}

// Sharfman et al.'s covering lemma: the convex hull of {e + Δv_i} is inside
// the union of the balls B(e + Δv_i/2, ‖Δv_i‖/2). Verified on random hull
// points drawn as random convex combinations.
TEST(CoveringLemmaTest, HullInsideUnionOfBalls) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t dim = 2 + trial % 4;
    const int n = 3 + static_cast<int>(rng.NextBounded(8));
    const Vector e = RandomVector(dim, -2.0, 2.0, &rng);

    std::vector<Vector> drifts;
    std::vector<Ball> balls;
    for (int i = 0; i < n; ++i) {
      drifts.push_back(RandomVector(dim, -3.0, 3.0, &rng));
      balls.push_back(Ball::LocalConstraint(e, drifts.back()));
    }

    for (int s = 0; s < 50; ++s) {
      // Random convex combination of the translated drifts.
      std::vector<double> w(n);
      double total = 0.0;
      for (int i = 0; i < n; ++i) {
        w[i] = rng.NextExponential(1.0);
        total += w[i];
      }
      Vector point = e;
      for (int i = 0; i < n; ++i) point.Axpy(w[i] / total, drifts[i]);

      bool covered = false;
      for (const Ball& ball : balls) {
        if (ball.Contains(point)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "trial " << trial << " sample " << s;
    }
  }
}

// Lemma 1(c): the HT estimate lies in Conv({e + Δv_i/g_i : i ∈ K}).
TEST(Lemma1Test, EstimateInInflatedSampleHull) {
  Rng rng(43);
  const int num_sites = 60;
  const std::size_t dim = 3;
  const double delta = 0.1;
  for (int trial = 0; trial < 20; ++trial) {
    const Vector e = RandomVector(dim, -1.0, 1.0, &rng);
    std::vector<Vector> drifts;
    double U = 0.0;
    for (int i = 0; i < num_sites; ++i) {
      drifts.push_back(RandomVector(dim, -2.0, 2.0, &rng));
      U = std::max(U, drifts.back().Norm());
    }
    U *= 1.01;

    HtVectorEstimator est(num_sites, dim);
    std::vector<Vector> inflated_vertices;
    for (int i = 0; i < num_sites; ++i) {
      const double g = SamplingProbability(delta, U, num_sites,
                                           drifts[i].Norm());
      if (rng.NextBernoulli(g)) {
        est.AddSample(drifts[i], g);
        Vector vertex = e;
        vertex.Axpy(1.0 / g, drifts[i]);
        inflated_vertices.push_back(vertex);
      }
    }
    if (inflated_vertices.empty()) continue;
    // e itself is a hull vertex too (sites outside K contribute Δ'v = 0).
    inflated_vertices.push_back(e);
    EXPECT_TRUE(HullContains(inflated_vertices, est.Estimate(e), 1e-5))
        << "trial " << trial;
  }
}

// Lemma 2(a): v̂ lies in the union of the |K|/(N·g_i)-scaled balls of the
// sampled sites.
TEST(Lemma2Test, EstimateInScaledSampleBalls) {
  Rng rng(44);
  const int num_sites = 80;
  const std::size_t dim = 3;
  const double delta = 0.1;
  int verified = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Vector e = RandomVector(dim, -1.0, 1.0, &rng);
    std::vector<Vector> drifts;
    double U = 0.0;
    for (int i = 0; i < num_sites; ++i) {
      drifts.push_back(RandomVector(dim, -2.0, 2.0, &rng));
      U = std::max(U, drifts.back().Norm());
    }
    U *= 1.01;

    HtVectorEstimator est(num_sites, dim);
    std::vector<int> sample;
    std::vector<double> sample_g;
    for (int i = 0; i < num_sites; ++i) {
      const double g = SamplingProbability(delta, U, num_sites,
                                           drifts[i].Norm());
      if (rng.NextBernoulli(g)) {
        est.AddSample(drifts[i], g);
        sample.push_back(i);
        sample_g.push_back(g);
      }
    }
    if (sample.empty()) continue;
    ++verified;
    const Vector v_hat = est.Estimate(e);
    const double k = static_cast<double>(sample.size());

    bool covered = false;
    for (std::size_t s = 0; s < sample.size(); ++s) {
      const double scale = k / (num_sites * sample_g[s]);
      Vector center = e;
      center.Axpy(0.5 * scale, drifts[sample[s]]);
      const Ball scaled(center, 0.5 * scale * drifts[sample[s]].Norm());
      if (scaled.Contains(v_hat)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "trial " << trial;
  }
  EXPECT_GT(verified, 10);
}

// Lemma 2(b): E[|K|/(N·g_i) | i ∈ K] ≈ 1 — estimated over repeated draws.
TEST(Lemma2Test, ExpectedScaleNearOne) {
  Rng rng(45);
  const int num_sites = 200;
  const double delta = 0.1;
  std::vector<double> norms;
  double U = 0.0;
  for (int i = 0; i < num_sites; ++i) {
    norms.push_back(rng.NextDouble(0.1, 3.0));
    U = std::max(U, norms.back());
  }
  U *= 1.01;

  double accum = 0.0;
  long count = 0;
  for (int round = 0; round < 3000; ++round) {
    std::vector<int> sample;
    for (int i = 0; i < num_sites; ++i) {
      const double g = SamplingProbability(delta, U, num_sites, norms[i]);
      if (rng.NextBernoulli(g)) sample.push_back(i);
    }
    for (int i : sample) {
      const double g = SamplingProbability(delta, U, num_sites, norms[i]);
      accum += static_cast<double>(sample.size()) / (num_sites * g);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(accum / static_cast<double>(count), 1.0, 0.1);
}

// Lemma 4 / Corollary 1 for ball and halfspace zones: when the average of
// signed distances is negative, the average point is inside C.
TEST(Lemma4Test, NegativeMeanDistanceImpliesAverageInside) {
  Rng rng(46);
  int negative_cases = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t dim = 2 + trial % 3;
    const int n = 3 + static_cast<int>(rng.NextBounded(10));

    std::unique_ptr<SafeZone> zone;
    if (trial % 2 == 0) {
      zone = std::make_unique<BallSafeZone>(
          Ball(RandomVector(dim, -1.0, 1.0, &rng), rng.NextDouble(0.5, 3.0)));
    } else {
      zone = std::make_unique<HalfspaceSafeZone>(
          Halfspace(RandomVector(dim, -1.0, 1.0, &rng) + Vector(dim, 0.1),
                    rng.NextDouble(-1.0, 2.0)));
    }

    std::vector<Vector> points;
    for (int i = 0; i < n; ++i) {
      points.push_back(RandomVector(dim, -4.0, 4.0, &rng));
    }
    const SignedDistanceSummary summary =
        SummarizeSignedDistances(*zone, points);
    if (summary.average < 0.0) {
      ++negative_cases;
      EXPECT_TRUE(zone->Contains(Mean(points)))
          << "trial " << trial << " avg distance " << summary.average;
    }
  }
  EXPECT_GT(negative_cases, 50);  // the property was actually exercised
}

// Contrapositive sanity: when the average point is OUTSIDE C the signed
// distance sum must be positive (Lemma 4 restated).
TEST(Lemma4Test, AverageOutsideImpliesPositiveSum) {
  Rng rng(47);
  int outside_cases = 0;
  for (int trial = 0; trial < 400; ++trial) {
    BallSafeZone zone(
        Ball(RandomVector(3, -1.0, 1.0, &rng), rng.NextDouble(0.5, 2.0)));
    std::vector<Vector> points;
    const int n = 3 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < n; ++i) {
      points.push_back(RandomVector(3, -5.0, 5.0, &rng));
    }
    if (!zone.Contains(Mean(points))) {
      ++outside_cases;
      EXPECT_GT(SummarizeSignedDistances(zone, points).sum, 0.0)
          << "trial " << trial;
    }
  }
  EXPECT_GT(outside_cases, 50);
}

// Inequality 6: |d_C(e + Δv)| ≤ ‖Δv‖ when e ∈ C — the bound that lets the
// same U cap both schemes.
TEST(Inequality6Test, SignedDistanceBoundedByDriftNorm) {
  Rng rng(48);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dim = 3;
    const Vector center = RandomVector(dim, -1.0, 1.0, &rng);
    const double radius = rng.NextDouble(0.5, 3.0);
    BallSafeZone zone(Ball(center, radius));
    // e on the zone boundary-to-center segment (inside C).
    Vector e = center;
    const Vector drift = RandomVector(dim, -2.0, 2.0, &rng);
    const double d_e = zone.SignedDistance(e);
    const double d_moved = zone.SignedDistance(e + drift);
    // 1-Lipschitzness of the signed distance: |d(e+Δ) − d(e)| ≤ ‖Δ‖.
    EXPECT_LE(std::abs(d_moved - d_e), drift.Norm() + 1e-9);
  }
}

}  // namespace
}  // namespace sgm
