// MetricRegistry: counter/gauge/histogram semantics, pointer stability,
// JSON snapshot shape, and multi-threaded increments (run under TSan by the
// sanitizer CI job — the concurrency tests are the data-race oracle).

#include "obs/metric_registry.h"

#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace sgm {
namespace {

TEST(CounterTest, IncrementAndSet) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5);
  counter.Set(42);
  EXPECT_EQ(counter.value(), 42);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-3.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.0);
}

TEST(HistogramTest, BucketsObservationsByUpperEdge) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (≤ 1)
  histogram.Observe(1.0);    // bucket 0 (edges are inclusive)
  histogram.Observe(7.0);    // bucket 1
  histogram.Observe(1000.0); // overflow
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1008.5);
  EXPECT_EQ(histogram.bucket_counts(), (std::vector<long>{2, 1, 0, 1}));
}

// The overflow bucket (observations above the last edge) is reported
// explicitly: quantile estimates clamp to the last edge, so a nonzero
// overflow is the reader's signal that p99 is a floor, not an estimate.
TEST(HistogramTest, OverflowCountIsExplicit) {
  Histogram histogram({1.0, 10.0});
  EXPECT_EQ(histogram.overflow_count(), 0);
  histogram.Observe(0.5);
  histogram.Observe(11.0);
  histogram.Observe(5000.0);
  EXPECT_EQ(histogram.overflow_count(), 2);
  EXPECT_EQ(histogram.count(), 3);
}

TEST(MetricRegistryTest, WritersExposeHistogramOverflow) {
  MetricRegistry registry;
  Histogram* histogram = registry.GetHistogram("site.ball_test_ns");
  histogram->Observe(1.0);
  histogram->Observe(1e18);  // far beyond the last latency edge

  std::ostringstream json;
  registry.WriteJson(json);
  auto parsed = JsonValue::Parse(json.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* ball =
      parsed.ValueOrDie().Find("histograms")->Find("site.ball_test_ns");
  ASSERT_NE(ball, nullptr);
  EXPECT_DOUBLE_EQ(ball->NumberOr("overflow", -1), 1.0);

  std::ostringstream prom;
  registry.WritePrometheus(prom);
  EXPECT_NE(prom.str().find("sgm_site_ball_test_ns_overflow 1\n"),
            std::string::npos)
      << prom.str();
}

TEST(HistogramTest, LatencyEdgesAreAscending) {
  const std::vector<double>& edges = LatencyBucketsNs();
  ASSERT_GE(edges.size(), 2u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(MetricRegistryTest, ReturnsStablePointers) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("a.b");
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("a.b"), counter);
  EXPECT_EQ(registry.GetCounter("a.b")->value(), 1);
  EXPECT_NE(registry.GetCounter("a.c"), counter);

  Histogram* histogram = registry.GetHistogram("h", {1.0, 2.0});
  // Re-request with different bounds: layout is frozen at first creation.
  EXPECT_EQ(registry.GetHistogram("h", {5.0}), histogram);
  EXPECT_EQ(histogram->bounds().size(), 2u);
}

TEST(MetricRegistryTest, WriteJsonIsValidAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("transport.sends")->Set(7);
  registry.GetGauge("failure.live_count")->Set(24.0);
  registry.GetHistogram("site.ball_test_ns")->Observe(512.0);

  std::ostringstream out;
  registry.WriteJson(out);
  auto parsed = JsonValue::Parse(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& root = parsed.ValueOrDie();

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->NumberOr("transport.sends", -1), 7.0);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->NumberOr("failure.live_count", -1), 24.0);

  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* ball = histograms->Find("site.ball_test_ns");
  ASSERT_NE(ball, nullptr);
  EXPECT_DOUBLE_EQ(ball->NumberOr("count", -1), 1.0);
  const JsonValue* buckets = ball->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->array().size(), LatencyBucketsNs().size() + 1);
}

// Concurrency: N threads hammer one counter, one gauge and one histogram
// through the registry. Exact counter totals must survive; under
// -fsanitize=thread this is also the no-data-race proof for the lock-free
// increment paths and the mutex-guarded lookup path.
TEST(MetricRegistryTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  MetricRegistry registry;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Lookup inside the thread: exercises concurrent GetCounter too.
      Counter* counter = registry.GetCounter("concurrent.counter");
      Gauge* gauge = registry.GetGauge("concurrent.gauge");
      Histogram* histogram =
          registry.GetHistogram("concurrent.histogram", {10.0, 100.0});
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter->Increment();
        gauge->Set(static_cast<double>(t));
        histogram->Observe(static_cast<double>(i % 128));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("concurrent.counter")->value(),
            static_cast<long>(kThreads) * kIncrementsPerThread);
  Histogram* histogram = registry.GetHistogram("concurrent.histogram");
  EXPECT_EQ(histogram->count(),
            static_cast<long>(kThreads) * kIncrementsPerThread);
  long bucket_total = 0;
  for (long count : histogram->bucket_counts()) bucket_total += count;
  EXPECT_EQ(bucket_total, histogram->count());
  const double gauge_value = registry.GetGauge("concurrent.gauge")->value();
  EXPECT_GE(gauge_value, 0.0);
  EXPECT_LT(gauge_value, kThreads);
}

TEST(MetricRegistryTest, ConcurrentDistinctNamesStayIsolated) {
  constexpr int kThreads = 8;
  MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* counter =
          registry.GetCounter("isolated." + std::to_string(t));
      for (int i = 0; i <= t; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("isolated." + std::to_string(t))->value(),
              t + 1);
  }
}

}  // namespace
}  // namespace sgm
