#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(MetricsTest, MessageCounting) {
  Metrics m;
  m.AddSiteMessages(5, 3);
  m.AddBroadcast(3);
  m.AddCoordinatorUnicast(0);
  EXPECT_EQ(m.site_messages(), 5);
  EXPECT_EQ(m.coordinator_messages(), 2);
  EXPECT_EQ(m.total_messages(), 7);
}

TEST(MetricsTest, ByteAccounting) {
  Metrics m;
  m.AddSiteMessages(2, 4);  // 2 * (16 + 32)
  EXPECT_DOUBLE_EQ(m.total_bytes(), 96.0);
  m.AddBroadcast(1);  // + 24
  EXPECT_DOUBLE_EQ(m.total_bytes(), 120.0);
  m.AddPiggybackPayload(3, 2);  // + 48, no messages
  EXPECT_DOUBLE_EQ(m.total_bytes(), 168.0);
  EXPECT_EQ(m.total_messages(), 3);
}

TEST(MetricsTest, FullSyncClassification) {
  Metrics m;
  m.OnFullSync(/*was_true_crossing=*/true);
  m.OnFullSync(/*was_true_crossing=*/false);
  m.OnFullSync(/*was_true_crossing=*/false);
  EXPECT_EQ(m.full_syncs(), 3);
  EXPECT_EQ(m.false_positives(), 2);
}

TEST(MetricsTest, OneDResolutionIsFalsePositive) {
  Metrics m;
  m.OnOneDResolution();
  EXPECT_EQ(m.one_d_resolutions(), 1);
  EXPECT_EQ(m.false_positives(), 1);
  EXPECT_EQ(m.full_syncs(), 0);
}

TEST(MetricsTest, FnRunTracking) {
  Metrics m;
  // Runs: length 2, then 1.
  m.OnCycle(false);
  m.OnCycle(true);
  m.OnCycle(true);
  m.OnCycle(false);
  m.OnCycle(true);
  m.OnCycle(false);
  m.Finalize();
  EXPECT_EQ(m.cycles(), 6);
  EXPECT_EQ(m.false_negative_cycles(), 3);
  EXPECT_EQ(m.false_negative_runs(), 2);
  EXPECT_EQ(m.FnDurationMode(), 1);           // ties break small, {2,1}
  EXPECT_DOUBLE_EQ(m.FnDurationMedian(), 1.5);
}

TEST(MetricsTest, FinalizeFlushesTrailingRun) {
  Metrics m;
  m.OnCycle(true);
  m.OnCycle(true);
  m.Finalize();
  EXPECT_EQ(m.false_negative_runs(), 1);
  EXPECT_EQ(m.FnDurationMode(), 2);
  EXPECT_DOUBLE_EQ(m.FnDurationMedian(), 2.0);
}

TEST(MetricsTest, NoFnGivesZeroStats) {
  Metrics m;
  m.OnCycle(false);
  m.Finalize();
  EXPECT_EQ(m.FnDurationMode(), 0);
  EXPECT_EQ(m.FnDurationMedian(), 0.0);
}

TEST(MetricsTest, ModePrefersFrequent) {
  Metrics m;
  // Runs of lengths 3, 1, 1.
  m.OnCycle(true);
  m.OnCycle(true);
  m.OnCycle(true);
  m.OnCycle(false);
  m.OnCycle(true);
  m.OnCycle(false);
  m.OnCycle(true);
  m.Finalize();
  EXPECT_EQ(m.FnDurationMode(), 1);
  EXPECT_DOUBLE_EQ(m.FnDurationMedian(), 1.0);
}

TEST(MetricsTest, SiteMessagesPerUpdate) {
  Metrics m;
  m.AddSiteMessages(200, 1);
  for (int i = 0; i < 10; ++i) m.OnCycle(false);
  // 200 site messages over 10 cycles and 20 sites: 1 per site-update.
  EXPECT_DOUBLE_EQ(m.SiteMessagesPerUpdate(20), 1.0);
}

TEST(MetricsTest, PartialAndAlarmCounters) {
  Metrics m;
  m.OnPartialResolution();
  m.OnPartialResolution();
  m.OnLocalAlarm();
  EXPECT_EQ(m.partial_resolutions(), 2);
  EXPECT_EQ(m.local_alarm_cycles(), 1);
}

}  // namespace
}  // namespace sgm
