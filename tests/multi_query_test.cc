#include "sim/multi_query.h"

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/sgm.h"

namespace sgm {
namespace {

JesterLikeConfig SmallConfig() {
  JesterLikeConfig config;
  config.num_sites = 50;
  config.window = 40;
  config.seed = 777;
  return config;
}

std::unique_ptr<Protocol> MakeSgm(const MonitoredFunction& f,
                                  double threshold, double step,
                                  double cap) {
  SgmOptions options;
  auto protocol =
      std::make_unique<SamplingGeometricMonitor>(f, threshold, step, options);
  protocol->set_drift_norm_cap(cap);
  return protocol;
}

TEST(MultiQueryTest, RunsAllQueriesOverSharedStream) {
  JesterLikeGenerator source(SmallConfig());
  const double step = source.max_step_norm();
  const double cap = source.max_drift_norm();
  const std::size_t dim = SmallConfig().num_buckets;

  MultiQueryRunner runner(&source);
  const LInfDistance linf{Vector(dim)};
  const JeffreyDivergence jd{Vector(dim)};
  const auto sj = L2Norm::SelfJoinSize();
  runner.AddQuery("linf", MakeSgm(linf, 8.0, step, cap));
  runner.AddQuery("jd", MakeSgm(jd, 10.0, step, cap));
  runner.AddQuery("sj", MakeSgm(*sj, 2700.0, step, cap));

  const auto& results = runner.Run(300);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    EXPECT_EQ(result.run.cycles, 300) << result.label;
    EXPECT_GT(result.run.metrics.total_messages(), 0) << result.label;
  }
}

TEST(MultiQueryTest, MatchesStandaloneRuns) {
  // Each query's metrics must be identical to running it alone on the same
  // stream (queries are independent; the runner only shares the data).
  const std::size_t dim = SmallConfig().num_buckets;
  const LInfDistance linf{Vector(dim)};

  long standalone;
  {
    JesterLikeGenerator source(SmallConfig());
    SgmOptions options;
    SamplingGeometricMonitor sgm(linf, 8.0, source.max_step_norm(), options);
    sgm.set_drift_norm_cap(source.max_drift_norm());
    standalone = Simulate(&source, &sgm, 300).metrics.total_messages();
  }
  {
    JesterLikeGenerator source(SmallConfig());
    MultiQueryRunner runner(&source);
    runner.AddQuery("linf", MakeSgm(linf, 8.0, source.max_step_norm(),
                                    source.max_drift_norm()));
    const auto& results = runner.Run(300);
    EXPECT_EQ(results[0].run.metrics.total_messages(), standalone);
  }
}

TEST(MultiQueryTest, BatchedBoundBetweenHeaviestAndTotal) {
  JesterLikeGenerator source(SmallConfig());
  const double step = source.max_step_norm();
  const double cap = source.max_drift_norm();
  const std::size_t dim = SmallConfig().num_buckets;
  const LInfDistance linf{Vector(dim)};
  const JeffreyDivergence jd{Vector(dim)};

  MultiQueryRunner runner(&source);
  runner.AddQuery("linf", MakeSgm(linf, 8.0, step, cap));
  runner.AddQuery("jd", MakeSgm(jd, 10.0, step, cap));
  runner.Run(400);

  long heaviest = 0;
  for (const auto& result : runner.results()) {
    heaviest =
        std::max(heaviest, result.run.metrics.total_messages());
  }
  EXPECT_GE(runner.BatchedMessages(), heaviest);
  EXPECT_LE(runner.BatchedMessages(), runner.TotalMessages());
}

TEST(MultiQueryTest, OracleTracksEachQuerySeparately) {
  JesterLikeGenerator source(SmallConfig());
  const std::size_t dim = SmallConfig().num_buckets;
  const LInfDistance linf{Vector(dim)};

  MultiQueryRunner runner(&source);
  // A threshold low enough to be crossed and one absurdly high.
  runner.AddQuery("tight", MakeSgm(linf, 3.0, source.max_step_norm(),
                                   source.max_drift_norm()));
  runner.AddQuery("loose", MakeSgm(linf, 500.0, source.max_step_norm(),
                                   source.max_drift_norm()));
  const auto& results = runner.Run(600);
  EXPECT_GT(results[0].run.metrics.full_syncs() +
                results[0].run.metrics.partial_resolutions(),
            0);
  EXPECT_EQ(results[1].run.true_crossing_cycles, 0);
  EXPECT_EQ(results[1].run.metrics.false_negative_cycles(), 0);
}

}  // namespace
}  // namespace sgm
