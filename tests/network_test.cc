// Tests of the simulation driver itself (sim/network.h): oracle accounting,
// lifecycle, and the base-class default machinery of MonitoredFunction
// exercised through a minimal custom function.

#include <cmath>

#include <gtest/gtest.h>

#include "functions/monitored_function.h"
#include "gm/gm.h"
#include "sim/network.h"
#include "test_util.h"

namespace sgm {
namespace {

TEST(IntervalTest, Straddles) {
  const Interval range{1.0, 3.0};
  EXPECT_TRUE(range.Straddles(2.0));
  EXPECT_TRUE(range.Straddles(1.0));
  EXPECT_TRUE(range.Straddles(3.0));
  EXPECT_FALSE(range.Straddles(0.99));
  EXPECT_FALSE(range.Straddles(3.01));
}

// A deliberately minimal function that overrides nothing optional: the
// default finite-difference gradient, probing enclosure, and bisection
// surface distance must all be serviceable.
class MinimalQuadratic final : public MonitoredFunction {
 public:
  std::string name() const override { return "minimal_quadratic"; }
  double Value(const Vector& v) const override {
    return v.SquaredNorm() - v[0];
  }
  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<MinimalQuadratic>(*this);
  }
};

TEST(MonitoredFunctionDefaultsTest, NumericGradientAccurate) {
  const MinimalQuadratic f;
  const Vector v{1.5, -2.0};
  const Vector grad = f.Gradient(v);
  EXPECT_NEAR(grad[0], 2.0 * 1.5 - 1.0, 1e-5);
  EXPECT_NEAR(grad[1], -4.0, 1e-5);
}

TEST(MonitoredFunctionDefaultsTest, DefaultEnclosureCoversSamples) {
  const MinimalQuadratic f;
  const Ball ball(Vector{1.0, 1.0}, 0.7);
  const Interval range = f.RangeOverBall(ball);
  // Corners of an inscribed square are inside the ball.
  const double r = 0.7 / std::sqrt(2.0);
  for (const Vector& p :
       {Vector{1.0 + r, 1.0 + r}, Vector{1.0 - r, 1.0 + r},
        Vector{1.0 + r, 1.0 - r}, Vector{1.0 - r, 1.0 - r}}) {
    const double value = f.Value(p);
    EXPECT_GE(value, range.lo - 1e-9);
    EXPECT_LE(value, range.hi + 1e-9);
  }
}

TEST(MonitoredFunctionDefaultsTest, DefaultSurfaceDistancePositiveAndSafe) {
  const MinimalQuadratic f;
  const Vector p{0.5, 0.0};  // f = -0.25
  const double distance = f.DistanceToSurface(p, 2.0);
  EXPECT_GT(distance, 0.0);
  // Walking less than `distance` in any axis direction must not cross.
  for (const Vector& step : {Vector{distance * 0.9, 0.0},
                             Vector{-distance * 0.9, 0.0},
                             Vector{0.0, distance * 0.9}}) {
    EXPECT_LT(f.Value(p + step), 2.0);
  }
}

TEST(NetworkTest, CountsTrueCrossingCycles) {
  // 1 quiet cycle below, then 3 above: the oracle must count exactly 3.
  std::vector<std::vector<Vector>> frames;
  frames.push_back({Vector{1.0, 0.0}});
  frames.push_back({Vector{1.0, 0.0}});
  for (int t = 0; t < 3; ++t) frames.push_back({Vector{5.0, 0.0}});
  ScriptedSource source(std::move(frames), 10.0);
  const MinimalQuadratic f;  // f(v) = ‖v‖² − v0: 0 at (1,0), 20 at (5,0)
  GeometricMonitor gm(f, 10.0, source.max_step_norm());
  const RunResult result = Simulate(&source, &gm, 4);
  EXPECT_EQ(result.true_crossing_cycles, 3);
  EXPECT_EQ(result.cycles, 4);
}

TEST(NetworkTest, SimulateMatchesExplicitNetwork) {
  std::vector<std::vector<Vector>> frames(6, {Vector{1.0, 0.0}});
  const MinimalQuadratic f;
  ScriptedSource s1(frames, 1.0), s2(frames, 1.0);
  GeometricMonitor gm1(f, 10.0, 1.0), gm2(f, 10.0, 1.0);
  const RunResult a = Simulate(&s1, &gm1, 5);
  const RunResult b = Network(&s2, &gm2).Run(5);
  EXPECT_EQ(a.metrics.total_messages(), b.metrics.total_messages());
  EXPECT_EQ(a.true_crossing_cycles, b.true_crossing_cycles);
}

}  // namespace
}  // namespace sgm
