// Tests of the prediction-model substrate (predict/model.h): fit quality on
// synthetic trajectories, the pred(0) = v(0) anchoring invariant, and the
// CAA-style adaptive selection.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "predict/model.h"

namespace sgm {
namespace {

std::vector<Vector> LinearTrajectory(int h, const Vector& start,
                                     const Vector& slope) {
  std::vector<Vector> history;
  for (int t = 0; t < h; ++t) {
    Vector v = start;
    v.Axpy(static_cast<double>(t), slope);
    history.push_back(v);
  }
  return history;
}

std::vector<Vector> QuadraticTrajectory(int h, double accel) {
  std::vector<Vector> history;
  for (int t = 0; t < h; ++t) {
    const double x = 0.5 * accel * t * t;
    history.push_back(Vector{x, -x});
  }
  return history;
}

// Anchoring invariant: every model predicts exactly v(0) at k = 0 — the
// deviation-from-prediction construction needs zero drift right after sync.
TEST(PredictionModelTest, AllModelsAnchorAtSyncValue) {
  Rng rng(4);
  std::vector<Vector> history;
  for (int t = 0; t < 7; ++t) {
    history.push_back(Vector{rng.NextDouble(-3, 3), rng.NextDouble(-3, 3)});
  }
  StaticModel s;
  VelocityModel v;
  VelocityAccelerationModel va;
  AdaptiveModel a;
  for (PredictionModel* model :
       std::initializer_list<PredictionModel*>{&s, &v, &va, &a}) {
    model->Fit(history);
    EXPECT_EQ(model->Predict(0), history.back()) << model->name();
  }
}

TEST(PredictionModelTest, StaticPredictsConstant) {
  StaticModel model;
  model.Fit(LinearTrajectory(5, Vector{1.0, 2.0}, Vector{1.0, 0.0}));
  EXPECT_EQ(model.Predict(10), (Vector{5.0, 2.0}));  // last value, held
  EXPECT_EQ(model.ParameterDoubles(), 0u);
}

TEST(PredictionModelTest, VelocityRecoversLinearMotion) {
  VelocityModel model;
  model.Fit(LinearTrajectory(6, Vector{0.0, 1.0}, Vector{0.5, -0.25}));
  const Vector pred = model.Predict(4);
  EXPECT_NEAR(pred[0], 2.5 + 0.5 * 4, 1e-9);
  EXPECT_NEAR(pred[1], -0.25 + (-0.25) * 4, 1e-9);
}

TEST(PredictionModelTest, VelocityHandlesSingletonHistory) {
  VelocityModel model;
  model.Fit({Vector{3.0}});
  EXPECT_EQ(model.Predict(5), (Vector{3.0}));
}

TEST(PredictionModelTest, VaRecoversQuadraticMotion) {
  VelocityAccelerationModel model;
  model.Fit(QuadraticTrajectory(8, 0.3));
  // Trajectory: x(t) = 0.15 t² with the fit anchored at t = 7.
  const double expected = 0.15 * 11.0 * 11.0;
  EXPECT_NEAR(model.Predict(4)[0], expected, 1e-6);
  EXPECT_NEAR(model.Predict(4)[1], -expected, 1e-6);
}

TEST(PredictionModelTest, VaFallsBackOnShortHistory) {
  VelocityAccelerationModel model;
  model.Fit(LinearTrajectory(2, Vector{0.0}, Vector{1.0}));
  EXPECT_NEAR(model.Predict(3)[0], 4.0, 1e-9);  // linear extrapolation
}

TEST(AdaptiveModelTest, PicksStaticForConstantSignal) {
  AdaptiveModel model;
  model.Fit(std::vector<Vector>(8, Vector{2.0, 2.0}));
  // All models are exact on a constant; the tie goes to the first (static,
  // cheapest payload).
  EXPECT_EQ(model.selected(), "static");
}

TEST(AdaptiveModelTest, PicksVelocityForLinearSignal) {
  AdaptiveModel model;
  model.Fit(LinearTrajectory(9, Vector{0.0}, Vector{1.0}));
  EXPECT_NE(model.selected(), "static");
  EXPECT_NEAR(model.Predict(3)[0], 11.0, 1e-6);
}

TEST(AdaptiveModelTest, PicksQuadraticForAcceleratingSignal) {
  AdaptiveModel model;
  model.Fit(QuadraticTrajectory(9, 1.0));
  EXPECT_EQ(model.selected(), "velocity_acceleration");
}

TEST(AdaptiveModelTest, NoisySignalPrefersSimplerModel) {
  // Pure noise: extrapolating fitted slopes hurts; the back-test should
  // favor the static model most of the time.
  Rng rng(12);
  int static_wins = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Vector> history;
    for (int t = 0; t < 9; ++t) {
      history.push_back(Vector{rng.NextGaussian()});
    }
    AdaptiveModel model;
    model.Fit(history);
    if (model.selected() == "static") ++static_wins;
  }
  EXPECT_GT(static_wins, 10);
}

TEST(AdaptiveModelTest, CloneKeepsSelection) {
  AdaptiveModel model;
  model.Fit(LinearTrajectory(9, Vector{0.0}, Vector{2.0}));
  auto clone = model.Clone();
  EXPECT_EQ(clone->Predict(2), model.Predict(2));
}

}  // namespace
}  // namespace sgm
