// Multi-process loopback integration test (CTest label: integration): one
// coordinator process (this test) plus four fork()ed site processes, each
// running the real SiteClient event loop over TCP, reproducing the seeded
// workload locally and speaking only protocol frames over the wire. The
// oracle is the single-process RuntimeDriver on the same seed: per-cycle
// belief sequence, final estimate, epoch and sync counters must match
// exactly — the paper's protocol, bit-for-bit, across process boundaries.
//
// fork() discipline: the server binds with Listen() (no threads) before the
// forks; WaitForSites() starts the accept thread only afterwards, so no
// thread ever exists in a forking process. Children _exit() — no gtest
// teardown, no destructors of the inherited server object.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "obs/telemetry.h"
#include "obs/trace_merge.h"
#include "runtime/coordinator_server.h"
#include "runtime/driver.h"
#include "runtime/site_client.h"

namespace sgm {
namespace {

constexpr int kSites = 4;
constexpr int kCycles = 40;  // Tick cycles after the initialization sync

SyntheticDriftConfig GeneratorConfig() {
  SyntheticDriftConfig config;
  config.num_sites = kSites;
  config.dim = 4;
  config.seed = 23;
  // Short shared-drift period so the global average crosses the threshold
  // within the run — parity on a quiet workload would prove nothing.
  config.global_period = 60;
  config.global_amplitude = 2.5;
  return config;
}

RuntimeConfig ProtocolConfig() {
  SyntheticDriftGenerator probe(GeneratorConfig());
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = probe.max_step_norm();
  config.drift_norm_cap = probe.max_drift_norm();
  config.seed = 7;
  return config;
}

struct RunOutcome {
  std::vector<bool> beliefs;
  Vector estimate;
  std::int64_t epoch = 0;
  long full_syncs = 0;
  long partial_resolutions = 0;
  long degraded_syncs = 0;
};

RunOutcome RunSimOracle() {
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  RuntimeDriver driver(kSites, norm, ProtocolConfig());
  std::vector<Vector> locals;

  RunOutcome outcome;
  generator.Advance(&locals);
  driver.Initialize(locals);
  outcome.beliefs.push_back(driver.coordinator().BelievesAbove());
  for (int t = 0; t < kCycles; ++t) {
    generator.Advance(&locals);
    driver.Tick(locals);
    outcome.beliefs.push_back(driver.coordinator().BelievesAbove());
  }
  outcome.estimate = driver.coordinator().estimate();
  outcome.epoch = driver.coordinator().epoch();
  outcome.full_syncs = driver.coordinator().full_syncs();
  outcome.partial_resolutions = driver.coordinator().partial_resolutions();
  outcome.degraded_syncs = driver.coordinator().degraded_syncs();
  return outcome;
}

std::string TracePath(const std::string& proc) {
  return ::testing::TempDir() + "/procint." + proc + ".trace.jsonl";
}

/// The whole life of one site process; the exit status is its verdict.
[[noreturn]] void SiteProcessMain(int site_id, int port) {
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  const std::string proc = "site-" + std::to_string(site_id);
  Telemetry telemetry;
  telemetry.trace.SetProcess(proc);
  SiteClientConfig config;
  config.site_id = site_id;
  config.num_sites = kSites;
  config.port = port;
  config.runtime = ProtocolConfig();
  config.runtime.telemetry = &telemetry;
  SiteClient client(norm, config);
  if (!client.Connect()) _exit(2);
  std::vector<Vector> locals;
  long advanced = 0;
  const bool clean = client.Run([&](long cycle) {
    while (advanced <= cycle) {
      generator.Advance(&locals);
      ++advanced;
    }
    return locals[site_id];
  });
  if (!clean) _exit(3);
  if (client.cycles_observed() != kCycles + 1) _exit(4);
  {
    std::ofstream out(TracePath(proc));
    if (!out) _exit(5);
    telemetry.trace.WriteJsonl(out);
  }
  _exit(0);
}

TEST(ProcessIntegrationTest, FourSiteProcessesMatchSimDriverExactly) {
  const RunOutcome oracle = RunSimOracle();
  ASSERT_GE(oracle.full_syncs + oracle.partial_resolutions, 2)
      << "workload never re-triggered the protocol — retune the generator";

  const L2Norm norm;
  Telemetry telemetry;
  telemetry.trace.SetProcess("coordinator");
  CoordinatorServerConfig server_config;
  server_config.num_sites = kSites;
  server_config.runtime = ProtocolConfig();
  server_config.runtime.telemetry = &telemetry;
  CoordinatorServer server(norm, server_config);
  ASSERT_TRUE(server.Listen());  // bind only — still single-threaded

  std::vector<pid_t> children;
  for (int id = 0; id < kSites; ++id) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) SiteProcessMain(id, server.port());  // never returns
    children.push_back(pid);
  }

  ASSERT_TRUE(server.WaitForSites()) << "not all site processes registered";
  RunOutcome socket;
  for (int cycle = 0; cycle <= kCycles; ++cycle) {
    ASSERT_TRUE(server.RunCycle()) << "barrier timed out at cycle " << cycle;
    socket.beliefs.push_back(server.BelievesAbove());
  }
  socket.estimate = server.Estimate();
  socket.epoch = server.Epoch();
  socket.full_syncs = server.FullSyncs();
  socket.partial_resolutions = server.PartialResolutions();
  socket.degraded_syncs = server.DegradedSyncs();
  const long paper_messages = server.PaperMessages();
  const long paper_site_messages = server.PaperSiteMessages();
  server.Shutdown();

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "site process killed by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "site process failed";
  }

  // The acceptance bar of the socket runtime: a real multi-process
  // deployment reaches the same verdicts and the same estimate as the
  // reference single-process run of the same seed.
  EXPECT_EQ(socket.beliefs, oracle.beliefs);
  EXPECT_EQ(socket.estimate, oracle.estimate);  // exact, not approximate
  EXPECT_EQ(socket.epoch, oracle.epoch);
  EXPECT_EQ(socket.full_syncs, oracle.full_syncs);
  EXPECT_EQ(socket.partial_resolutions, oracle.partial_resolutions);
  EXPECT_EQ(socket.degraded_syncs, oracle.degraded_syncs);
  EXPECT_GT(paper_messages, 0);
  EXPECT_GT(paper_site_messages, 0);

  // ── Cross-process trace aggregation over the same run ────────────────────
  // Each process wrote its own stamped JSONL; the merge must produce one
  // validated, causally ordered timeline whose span forest has no orphans
  // and whose probe cascades demonstrably cross process boundaries.
  {
    std::ofstream out(TracePath("coordinator"));
    ASSERT_TRUE(out.good());
    telemetry.trace.WriteJsonl(out);
  }
  std::vector<std::vector<TraceEvent>> logs;
  std::vector<std::string> procs = {"coordinator"};
  for (int id = 0; id < kSites; ++id) {
    procs.push_back("site-" + std::to_string(id));
  }
  for (const std::string& proc : procs) {
    std::vector<TraceEvent> events;
    const Status loaded =
        LoadTraceJsonl(TracePath(proc), proc, /*validate=*/true, &events);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    ASSERT_FALSE(events.empty()) << proc << " wrote an empty trace";
    logs.push_back(std::move(events));
  }
  const std::vector<TraceEvent> merged = MergeTraceTimelines(logs);
  const SpanForestSummary forest = SummarizeSpanForest(merged);
  EXPECT_TRUE(forest.orphans.empty())
      << forest.orphans.size() << " orphan span(s), first: "
      << forest.orphans.front();
  EXPECT_GT(forest.spans, 0);
  EXPECT_GT(forest.roots, 0);
  // The protocol's sync cascades are inherently multi-process: the
  // coordinator mints the span and the sites' reports echo it.
  EXPECT_GT(forest.cross_process_spans, 0);
  bool crossing_critical_path = false;
  for (const SpanForestSummary::Root& root : forest.root_details) {
    if (root.critical_path_procs.size() >= 2) crossing_critical_path = true;
  }
  EXPECT_TRUE(crossing_critical_path)
      << "no cascade's critical path crossed a process boundary";
}

}  // namespace
}  // namespace sgm
