#include "sim/protocol.h"

#include <gtest/gtest.h>

#include "functions/l2_norm.h"
#include "functions/linear.h"
#include "functions/linf_distance.h"

namespace sgm {
namespace {

// Minimal concrete protocol: never alarms on its own; exposes the protected
// machinery for direct testing.
class PassiveProtocol : public ProtocolBase {
 public:
  using ProtocolBase::CurrentU;
  using ProtocolBase::Drift;
  using ProtocolBase::FullSync;

  PassiveProtocol(const MonitoredFunction& f, double threshold,
                  double max_step_norm)
      : ProtocolBase(f, threshold, max_step_norm) {}

  std::string name() const override { return "passive"; }

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>&, Metrics*) override {
    return {};
  }
};

std::vector<Vector> TwoSites(double a, double b) {
  return {Vector{a}, Vector{b}};
}

TEST(ProtocolBaseTest, InitializeComputesMeanAndAccountsMessages) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 10.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(2.0, 4.0), &m);
  EXPECT_EQ(p.estimate(), (Vector{3.0}));
  EXPECT_EQ(p.num_sites(), 2);
  EXPECT_EQ(m.site_messages(), 2);          // both vectors shipped
  EXPECT_EQ(m.coordinator_messages(), 1);   // e broadcast
  EXPECT_FALSE(p.BelievesAbove());
}

TEST(ProtocolBaseTest, BeliefAboveWhenInitialValueExceedsThreshold) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 1.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(2.0, 4.0), &m);
  EXPECT_TRUE(p.BelievesAbove());
}

TEST(ProtocolBaseTest, DriftComputedAgainstSyncSnapshot) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 10.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(2.0, 4.0), &m);
  const auto moved = TwoSites(3.0, 3.5);
  EXPECT_EQ(p.Drift(0, moved), (Vector{1.0}));
  EXPECT_EQ(p.Drift(1, moved), (Vector{-0.5}));
}

TEST(ProtocolBaseTest, UPolicyGrowsWithCyclesSinceSync) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 10.0, 0.5);
  Metrics m;
  p.Initialize(TwoSites(0.0, 0.0), &m);
  EXPECT_DOUBLE_EQ(p.CurrentU(), 0.5);  // clamped at one step right after sync
  p.OnCycle(TwoSites(0.1, 0.1), &m);
  EXPECT_DOUBLE_EQ(p.CurrentU(), 0.5);
  p.OnCycle(TwoSites(0.2, 0.2), &m);
  p.OnCycle(TwoSites(0.3, 0.3), &m);
  EXPECT_DOUBLE_EQ(p.CurrentU(), 1.5);  // 3 cycles * 0.5
}

TEST(ProtocolBaseTest, FullSyncResetsClockAndUpdatesBelief) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 5.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(0.0, 0.0), &m);
  p.OnCycle(TwoSites(5.0, 9.0), &m);
  EXPECT_FALSE(p.BelievesAbove());  // passive: no alarm raised

  const bool crossing = p.FullSync(TwoSites(5.0, 9.0), &m, 0);
  EXPECT_TRUE(crossing);            // average 7 > 5, belief was "below"
  EXPECT_TRUE(p.BelievesAbove());
  EXPECT_EQ(p.cycles_since_sync(), 0);
  EXPECT_EQ(p.estimate(), (Vector{7.0}));
  EXPECT_EQ(m.full_syncs(), 1);
  EXPECT_EQ(m.false_positives(), 0);
}

TEST(ProtocolBaseTest, FullSyncClassifiesFalsePositive) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 5.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(0.0, 0.0), &m);
  p.OnCycle(TwoSites(1.0, 2.0), &m);
  p.FullSync(TwoSites(1.0, 2.0), &m, 0);  // avg 1.5, still below 5
  EXPECT_EQ(m.false_positives(), 1);
}

TEST(ProtocolBaseTest, AlreadyCollectedReducesSyncMessages) {
  LinearFunction f(Vector{1.0});
  PassiveProtocol p(f, 5.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(0.0, 0.0), &m);
  const long before = m.site_messages();
  p.FullSync(TwoSites(0.0, 0.0), &m, /*already_collected=*/1);
  EXPECT_EQ(m.site_messages() - before, 1);  // only the missing site ships
}

TEST(ProtocolBaseTest, ReferenceFunctionReanchoredOnSync) {
  LInfDistance f(Vector{0.0});
  PassiveProtocol p(f, 3.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(2.0, 4.0), &m);  // e = 3, function ref := 3
  EXPECT_DOUBLE_EQ(p.function().Value(Vector{3.0}), 0.0);
  p.FullSync(TwoSites(8.0, 10.0), &m, 0);  // e = 9
  EXPECT_DOUBLE_EQ(p.function().Value(Vector{9.0}), 0.0);
  EXPECT_DOUBLE_EQ(p.function().Value(Vector{3.0}), 6.0);
}

TEST(ProtocolBaseTest, CloneLeavesPrototypeUntouched) {
  LInfDistance prototype(Vector{0.0});
  PassiveProtocol p(prototype, 3.0, 1.0);
  Metrics m;
  p.Initialize(TwoSites(2.0, 4.0), &m);
  // The protocol re-anchored its own clone; the prototype stays at ref 0.
  EXPECT_DOUBLE_EQ(prototype.Value(Vector{3.0}), 3.0);
}

}  // namespace
}  // namespace sgm
