// Cross-protocol property matrix: the same invariants checked against every
// protocol implementation via parameterized tests.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "functions/linf_distance.h"
#include "gm/bernoulli_gm.h"
#include "gm/bgm.h"
#include "gm/cvgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/pgm.h"
#include "gm/sgm.h"
#include "sim/network.h"
#include "test_util.h"

namespace sgm {
namespace {

enum class Kind { kGm, kBgm, kPgm, kSgm, kMsgm, kBernoulli, kCvgm, kCvsgm };

std::string KindLabel(Kind kind) {
  switch (kind) {
    case Kind::kGm: return "GM";
    case Kind::kBgm: return "BGM";
    case Kind::kPgm: return "PGM";
    case Kind::kSgm: return "SGM";
    case Kind::kMsgm: return "MSGM";
    case Kind::kBernoulli: return "Bernoulli";
    case Kind::kCvgm: return "CVGM";
    case Kind::kCvsgm: return "CVSGM";
  }
  return "?";
}

std::unique_ptr<ProtocolBase> Make(Kind kind, const MonitoredFunction& f,
                                   double threshold, double step) {
  switch (kind) {
    case Kind::kGm:
      return std::make_unique<GeometricMonitor>(f, threshold, step);
    case Kind::kBgm:
      return std::make_unique<BalancedGeometricMonitor>(f, threshold, step);
    case Kind::kPgm:
      return std::make_unique<PredictionGeometricMonitor>(f, threshold, step);
    case Kind::kSgm: {
      SgmOptions options;
      return std::make_unique<SamplingGeometricMonitor>(f, threshold, step,
                                                        options);
    }
    case Kind::kMsgm: {
      SgmOptions options;
      options.num_trials = 3;
      return std::make_unique<SamplingGeometricMonitor>(f, threshold, step,
                                                        options);
    }
    case Kind::kBernoulli:
      return MakeBernoulliMonitor(f, threshold, step, 0.1);
    case Kind::kCvgm:
      return std::make_unique<ConvexSafeZoneMonitor>(f, threshold, step);
    case Kind::kCvsgm: {
      CvsgmOptions options;
      return std::make_unique<CvSamplingMonitor>(f, threshold, step, options);
    }
  }
  return nullptr;
}

JesterLikeConfig Workload(int n = 60) {
  JesterLikeConfig config;
  config.num_sites = n;
  config.window = 50;
  config.seed = 1212;
  return config;
}

class ProtocolMatrixTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ProtocolMatrixTest, DeterministicAcrossRuns) {
  const LInfDistance f{Vector(Workload().num_buckets)};
  long totals[2];
  for (int run = 0; run < 2; ++run) {
    JesterLikeGenerator source(Workload());
    auto protocol = Make(GetParam(), f, 8.0, source.max_step_norm());
    protocol->set_drift_norm_cap(source.max_drift_norm());
    totals[run] = Simulate(&source, protocol.get(), 300)
                      .metrics.total_messages();
  }
  EXPECT_EQ(totals[0], totals[1]);
}

TEST_P(ProtocolMatrixTest, QuietStreamCostsInitOnly) {
  std::vector<std::vector<Vector>> frames(
      12, {Vector{1.0, 0.0}, Vector{0.5, 0.5}, Vector{0.0, 1.0}});
  ScriptedSource source(std::move(frames), 1.0);
  const LInfDistance f{Vector(2)};
  auto protocol = Make(GetParam(), f, 50.0, source.max_step_norm());
  const RunResult r = Simulate(&source, protocol.get(), 10);
  EXPECT_EQ(r.metrics.full_syncs(), 0) << KindLabel(GetParam());
  // Init: N site messages + 1 broadcast (plus nothing else).
  EXPECT_EQ(r.metrics.site_messages(), 3);
  EXPECT_EQ(r.metrics.coordinator_messages(), 1);
}

TEST_P(ProtocolMatrixTest, BeliefConsistentAfterFullSync) {
  JesterLikeGenerator source(Workload());
  const LInfDistance f{Vector(Workload().num_buckets)};
  auto protocol = Make(GetParam(), f, 4.0, source.max_step_norm());
  protocol->set_drift_norm_cap(source.max_drift_norm());

  std::vector<Vector> locals;
  source.Advance(&locals);
  Metrics metrics;
  protocol->Initialize(locals, &metrics);
  for (int t = 0; t < 200; ++t) {
    source.Advance(&locals);
    const CycleOutcome outcome = protocol->OnCycle(locals, &metrics);
    if (outcome.full_sync) {
      // Right after a full synchronization the coordinator's belief must
      // equal the oracle's side for the freshly-anchored function.
      const bool true_above =
          protocol->function().Value(Mean(locals)) > protocol->threshold();
      EXPECT_EQ(protocol->BelievesAbove(), true_above)
          << KindLabel(GetParam()) << " cycle " << t;
    }
  }
}

TEST_P(ProtocolMatrixTest, MessageAccountingNonNegativeAndConsistent) {
  JesterLikeGenerator source(Workload(40));
  const LInfDistance f{Vector(Workload().num_buckets)};
  auto protocol = Make(GetParam(), f, 6.0, source.max_step_norm());
  protocol->set_drift_norm_cap(source.max_drift_norm());
  const RunResult r = Simulate(&source, protocol.get(), 250);
  EXPECT_GE(r.metrics.site_messages(), 40);  // at least the init collection
  EXPECT_GE(r.metrics.coordinator_messages(), 1);
  EXPECT_GT(r.metrics.total_bytes(), 0.0);
  EXPECT_EQ(r.metrics.total_messages(),
            r.metrics.site_messages() + r.metrics.coordinator_messages());
  // Bytes at least header-size times messages.
  EXPECT_GE(r.metrics.total_bytes(),
            16.0 * static_cast<double>(r.metrics.total_messages()));
}

TEST_P(ProtocolMatrixTest, FnRateWithinTolerance) {
  JesterLikeGenerator source(Workload(80));
  const LInfDistance f{Vector(Workload().num_buckets)};
  auto protocol = Make(GetParam(), f, 5.0, source.max_step_norm());
  protocol->set_drift_norm_cap(source.max_drift_norm());
  const RunResult r = Simulate(&source, protocol.get(), 600);
  const double fn_rate =
      static_cast<double>(r.metrics.false_negative_cycles()) /
      static_cast<double>(r.cycles);
  switch (GetParam()) {
    case Kind::kGm:
    case Kind::kBgm:
    case Kind::kCvgm:
      // Exact protocols: zero false negatives by construction.
      EXPECT_EQ(r.metrics.false_negative_cycles(), 0) << KindLabel(GetParam());
      break;
    default:
      // Approximate protocols: within the configured tolerance δ = 0.1.
      EXPECT_LE(fn_rate, 0.1) << KindLabel(GetParam());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolMatrixTest,
                         ::testing::Values(Kind::kGm, Kind::kBgm, Kind::kPgm,
                                           Kind::kSgm, Kind::kMsgm,
                                           Kind::kBernoulli, Kind::kCvgm,
                                           Kind::kCvsgm),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return KindLabel(info.param);
                         });

}  // namespace
}  // namespace sgm
