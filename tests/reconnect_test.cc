// Tests of the socket runtime's self-healing paths, fully in-process (no
// fork — this suite runs under TSan in CI):
//  * reconnect-with-rejoin: a severed site connection redials, re-registers
//    with a re-hello, and the rejoin handshake re-anchors the site without
//    poisoning the paper counters;
//  * coordinator restart-from-checkpoint: a Halt()ed (crash-stopped)
//    coordinator's successor recovers from the shared store with an exact
//    epoch fence while the surviving site clients reconnect to it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "obs/telemetry.h"
#include "runtime/checkpoint.h"
#include "runtime/coordinator_server.h"
#include "runtime/site_client.h"

namespace sgm {
namespace {

constexpr int kSites = 4;

SyntheticDriftConfig GeneratorConfig() {
  SyntheticDriftConfig config;
  config.num_sites = kSites;
  config.dim = 4;
  config.seed = 23;
  config.global_period = 60;
  config.global_amplitude = 2.5;
  return config;
}

RuntimeConfig ProtocolConfig() {
  SyntheticDriftGenerator probe(GeneratorConfig());
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = probe.max_step_norm();
  config.drift_norm_cap = probe.max_drift_norm();
  config.seed = 7;
  return config;
}

SiteClientConfig SiteConfig(int id, int port) {
  SiteClientConfig config;
  config.site_id = id;
  config.num_sites = kSites;
  config.port = port;
  config.runtime = ProtocolConfig();
  // Fast dial policy: restarts in this suite happen within milliseconds.
  config.runtime.socket_retry.max_attempts = 400;
  config.runtime.socket_retry.base_backoff_ms = 1;
  config.runtime.socket_retry.max_backoff_ms = 20;
  config.max_reconnects = 16;
  return config;
}

/// Site worker over a heap-owned client (the test thread keeps the pointer
/// so it can inject faults mid-run).
void RunSite(SiteClient* client, int id, std::atomic<int>* failures) {
  SyntheticDriftGenerator generator(GeneratorConfig());
  if (!client->Connect()) {
    failures->fetch_add(1);
    return;
  }
  std::vector<Vector> locals;
  long advanced = 0;
  if (!client->Run([&](long cycle) {
        while (advanced <= cycle) {
          generator.Advance(&locals);
          ++advanced;
        }
        return locals[id];
      })) {
    failures->fetch_add(1);
  }
}

TEST(ReconnectTest, InjectedResetTriggersReconnectAndRejoin) {
  const L2Norm norm;
  Telemetry telemetry;
  CoordinatorServerConfig server_config;
  server_config.num_sites = kSites;
  server_config.runtime = ProtocolConfig();
  server_config.runtime.telemetry = &telemetry;
  CoordinatorServer server(norm, server_config);
  ASSERT_TRUE(server.Listen());

  std::vector<std::unique_ptr<SiteClient>> clients;
  for (int id = 0; id < kSites; ++id) {
    clients.push_back(
        std::make_unique<SiteClient>(norm, SiteConfig(id, server.port())));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < kSites; ++id) {
    threads.emplace_back(RunSite, clients[id].get(), id, &failures);
  }
  ASSERT_TRUE(server.WaitForSites());

  for (long cycle = 0; cycle <= 10; ++cycle) ASSERT_TRUE(server.RunCycle());
  const long syncs_before = server.FullSyncs();

  // Sever site 1's connection from outside. The client must notice, redial,
  // re-hello, and drive the rejoin handshake — all while the lockstep
  // cycles keep running against the shifting membership. The wait is
  // adaptive: a fixed cycle count races the client thread's redial under
  // CPU contention (the lockstep loop runs orders of magnitude faster than
  // a loaded scheduler re-runs the site thread).
  clients[1]->InjectConnectionReset();
  bool rehello = false;
  for (long cycle = 0; cycle < 400 && !rehello; ++cycle) {
    ASSERT_TRUE(server.RunCycle());
    rehello = server.SiteRehellos() >= 1;
    if (!rehello) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(rehello) << "site 1 never re-registered";
  // Post-rejoin window: the grant schedules a resync; let it land.
  for (long cycle = 0; cycle <= 30; ++cycle) ASSERT_TRUE(server.RunCycle());

  EXPECT_GE(clients[1]->reconnects(), 1L);
  EXPECT_GE(server.SiteRehellos(), 1L);
  EXPECT_GE(server.SiteDisconnects(), 1L);
  EXPECT_EQ(server.ConnectedCount(), kSites);
  // Bounded reconvergence: the rejoin grant schedules a resync, so the
  // post-fault window must contain at least one fresh full sync.
  EXPECT_GT(server.FullSyncs(), syncs_before);
  // Quiescence at the last barrier means nothing is owed on the wire.
  EXPECT_FALSE(server.HasUnacked());

  server.Shutdown();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& client : clients) {
    EXPECT_EQ(client->exit_reason(), SiteExitReason::kShutdown);
  }

  // The rejoin path must not have smuggled stale state into the estimate.
  server.PublishMetrics();
  MetricRegistry& registry = telemetry.registry;
  EXPECT_EQ(registry.GetCounter("coordinator.stale_epoch_applied")->value(),
            0L);
  EXPECT_GE(registry.GetCounter("coordinator.rejoins_granted")->value(), 1L);
  EXPECT_GE(registry.GetCounter("socket.site_rehellos")->value(), 1L);
}

TEST(ReconnectTest, CoordinatorRestartRecoversWithExactEpochFence) {
  const L2Norm norm;
  InMemoryCheckpointStore store;

  CoordinatorServerConfig config;
  config.num_sites = kSites;
  config.runtime = ProtocolConfig();
  config.runtime.checkpoint_store = &store;
  config.runtime.checkpoint_interval_cycles = 5;

  auto first = std::make_unique<CoordinatorServer>(norm, config);
  ASSERT_TRUE(first->Listen());
  const int port = first->port();

  std::vector<std::unique_ptr<SiteClient>> clients;
  for (int id = 0; id < kSites; ++id) {
    clients.push_back(
        std::make_unique<SiteClient>(norm, SiteConfig(id, port)));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < kSites; ++id) {
    threads.emplace_back(RunSite, clients[id].get(), id, &failures);
  }
  ASSERT_TRUE(first->WaitForSites());
  for (long cycle = 0; cycle <= 12; ++cycle) ASSERT_TRUE(first->RunCycle());
  const long cycles_before = first->CyclesRun();

  // Crash-stop: no shutdown broadcast. Site clients see a raw EOF and
  // start redialing the port.
  first->Halt();
  first.reset();

  // What the dead incarnation durably committed (log-before-wire makes
  // this exact, not approximate).
  const Result<Reconstruction> committed =
      ReconstructCoordinatorState(store);
  ASSERT_TRUE(committed.ok());
  const std::int64_t committed_epoch = committed.ValueOrDie().state.epoch;

  CoordinatorServerConfig restart_config = config;
  restart_config.port = port;  // same endpoint the sites keep dialing
  CoordinatorServer second(norm, restart_config);
  ASSERT_TRUE(second.Listen());
  ASSERT_TRUE(second.Recover());
  // The fence is exact: one past the committed epoch, every time.
  EXPECT_EQ(second.Epoch(), committed_epoch + 1);
  // Field-level restore: the successor resumes the committed cycle (the
  // newest snapshot/WAL record's), never restarts from zero.
  EXPECT_EQ(second.CyclesRun() - 1, committed.ValueOrDie().state.cycle);
  EXPECT_LE(second.CyclesRun(), cycles_before);
  EXPECT_GE(second.CyclesRun(), 11L);  // snapshot interval 5, crash at 12

  ASSERT_TRUE(second.WaitForSites());
  for (long cycle = 0; cycle <= 10; ++cycle) ASSERT_TRUE(second.RunCycle());
  EXPECT_EQ(second.ConnectedCount(), kSites);
  EXPECT_FALSE(second.HasUnacked());
  second.Shutdown();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (const auto& client : clients) {
    EXPECT_EQ(client->exit_reason(), SiteExitReason::kShutdown);
    EXPECT_GE(client->reconnects(), 1L);
  }
}

TEST(ReconnectTest, RecoverWithEmptyStoreFailsCleanly) {
  const L2Norm norm;
  InMemoryCheckpointStore store;
  CoordinatorServerConfig config;
  config.num_sites = kSites;
  config.runtime = ProtocolConfig();
  config.runtime.checkpoint_store = &store;
  CoordinatorServer server(norm, config);
  ASSERT_TRUE(server.Listen());
  EXPECT_FALSE(server.Recover()) << "no snapshot should mean no recovery";
  server.Shutdown();
}

}  // namespace
}  // namespace sgm
