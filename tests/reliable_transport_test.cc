// Unit tests of the ack/retransmit reliability decorator: sequencing, ack
// resolution, backoff retransmission, give-up reporting, receive-side
// dedup, and the control-message / link-administration exemptions.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/reliable_transport.h"
#include "runtime/transport.h"

namespace sgm {
namespace {

RuntimeMessage Report(int from) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kStateReport;
  m.from = from;
  m.to = kCoordinatorId;
  m.payload = Vector{1.0, 2.0};
  return m;
}

RuntimeMessage EstimateBroadcast() {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kNewEstimate;
  m.from = kCoordinatorId;
  m.to = kBroadcastId;
  m.payload = Vector{3.0, 4.0};
  return m;
}

/// Feeds one message through the receive stack and returns what survived.
std::vector<RuntimeMessage> DeliverTo(ReliableTransport* rt, int receiver,
                                      const RuntimeMessage& message) {
  std::vector<RuntimeMessage> fresh;
  rt->OnDeliver(receiver, message, &fresh);
  return fresh;
}

TEST(ReliableTransportTest, AckResolvesAndNothingRetransmits) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 2, ReliableTransportConfig{});
  rt.Send(Report(0));
  ASSERT_FALSE(bus.empty());
  const RuntimeMessage sent = bus.Pop();
  EXPECT_GT(sent.seq, 0);
  EXPECT_FALSE(sent.retransmit);
  EXPECT_TRUE(rt.HasUnacked());

  // Coordinator receives: the message survives and an ack goes back.
  const auto fresh = DeliverTo(&rt, kCoordinatorId, sent);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(rt.stats().acks_sent, 1);
  ASSERT_FALSE(bus.empty());
  const RuntimeMessage ack = bus.Pop();
  ASSERT_EQ(ack.type, RuntimeMessage::Type::kAck);
  EXPECT_EQ(ack.to, 0);
  EXPECT_EQ(ack.seq, sent.seq);

  // The ack resolves the in-flight entry; nothing ever retransmits.
  EXPECT_TRUE(DeliverTo(&rt, 0, ack).empty());
  EXPECT_FALSE(rt.HasUnacked());
  for (int i = 0; i < 32; ++i) rt.AdvanceRound();
  EXPECT_EQ(rt.stats().retransmissions, 0);
  EXPECT_TRUE(bus.empty());
}

TEST(ReliableTransportTest, LostMessageRetransmitsWithSameSequence) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 2, ReliableTransportConfig{});
  rt.Send(Report(1));
  const RuntimeMessage original = bus.Pop();  // dropped on the floor

  // base_backoff 1 + jitter {0,1}: the copy fires within two rounds.
  rt.AdvanceRound();
  if (bus.empty()) rt.AdvanceRound();
  ASSERT_FALSE(bus.empty());
  const RuntimeMessage copy = bus.Pop();
  EXPECT_TRUE(copy.retransmit);
  EXPECT_EQ(copy.seq, original.seq);
  EXPECT_EQ(copy.type, original.type);
  EXPECT_EQ(rt.stats().retransmissions, 1);
  EXPECT_TRUE(rt.HasUnacked());
}

TEST(ReliableTransportTest, DuplicateSuppressedAndReAcked) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 2, ReliableTransportConfig{});
  rt.Send(Report(0));
  const RuntimeMessage sent = bus.Pop();

  EXPECT_EQ(DeliverTo(&rt, kCoordinatorId, sent).size(), 1u);
  // The same (sender, seq) again — e.g. a retransmitted copy racing the
  // ack: suppressed, but re-acked in case the first ack was lost.
  EXPECT_TRUE(DeliverTo(&rt, kCoordinatorId, sent).empty());
  EXPECT_EQ(rt.stats().duplicates_suppressed, 1);
  EXPECT_EQ(rt.stats().acks_sent, 2);
}

TEST(ReliableTransportTest, BroadcastRetransmitsUnicastToSilentSitesOnly) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 3, ReliableTransportConfig{});
  rt.Send(EstimateBroadcast());
  const RuntimeMessage broadcast = bus.Pop();
  ASSERT_EQ(broadcast.to, kBroadcastId);

  // Sites 0 and 1 receive and ack; site 2 never sees it.
  for (int site : {0, 1}) {
    ASSERT_EQ(DeliverTo(&rt, site, broadcast).size(), 1u);
    const RuntimeMessage ack = bus.Pop();
    ASSERT_EQ(ack.type, RuntimeMessage::Type::kAck);
    EXPECT_TRUE(DeliverTo(&rt, kCoordinatorId, ack).empty());
  }
  EXPECT_TRUE(rt.HasUnacked());

  rt.AdvanceRound();
  if (bus.empty()) rt.AdvanceRound();
  ASSERT_FALSE(bus.empty());
  const RuntimeMessage copy = bus.Pop();
  EXPECT_TRUE(bus.empty());  // exactly one copy, for the one silent site
  EXPECT_TRUE(copy.retransmit);
  EXPECT_EQ(copy.to, 2);
  EXPECT_EQ(copy.seq, broadcast.seq);

  // Site 2's dedup still keys by (sender, seq): the late original would be
  // suppressed once the unicast copy has been delivered.
  ASSERT_EQ(DeliverTo(&rt, 2, copy).size(), 1u);
  bus.Pop();  // site 2's ack
  EXPECT_TRUE(DeliverTo(&rt, 2, broadcast).empty());
  EXPECT_EQ(rt.stats().duplicates_suppressed, 1);
}

TEST(ReliableTransportTest, GiveUpReportsDeadLinksWithTheLostMessage) {
  InMemoryBus bus;
  ReliableTransportConfig config;
  config.max_retransmits = 1;
  ReliableTransport rt(&bus, 2, config);
  std::vector<std::pair<int, RuntimeMessage::Type>> dead;
  rt.SetDeadLinkHandler([&](int site, const RuntimeMessage& m) {
    dead.emplace_back(site, m.type);
  });

  rt.Send(EstimateBroadcast());
  // Drop everything the transport ever puts on the wire.
  while (!bus.empty()) bus.Pop();
  for (int i = 0; i < 32 && rt.HasUnacked(); ++i) {
    rt.AdvanceRound();
    while (!bus.empty()) bus.Pop();
  }
  EXPECT_FALSE(rt.HasUnacked());
  EXPECT_EQ(rt.stats().give_ups, 1);
  ASSERT_EQ(dead.size(), 2u);  // both broadcast destinations were unreachable
  for (const auto& [site, type] : dead) {
    EXPECT_TRUE(site == 0 || site == 1);
    EXPECT_EQ(type, RuntimeMessage::Type::kNewEstimate);
  }
}

TEST(ReliableTransportTest, ControlMessagesAreNeverTracked) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 2, ReliableTransportConfig{});
  for (const RuntimeMessage::Type type :
       {RuntimeMessage::Type::kHeartbeat,
        RuntimeMessage::Type::kRejoinRequest}) {
    RuntimeMessage m;
    m.type = type;
    m.from = 0;
    m.to = kCoordinatorId;
    rt.Send(m);
    const RuntimeMessage sent = bus.Pop();
    EXPECT_EQ(sent.seq, 0);  // unsequenced
    EXPECT_FALSE(rt.HasUnacked());
    // Delivered verbatim; no ack is generated for unsequenced traffic.
    EXPECT_EQ(DeliverTo(&rt, kCoordinatorId, sent).size(), 1u);
    EXPECT_TRUE(bus.empty());
  }
  EXPECT_EQ(rt.stats().acks_sent, 0);
}

TEST(ReliableTransportTest, LinkDownReleasesAndExcludesFromTracking) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 3, ReliableTransportConfig{});

  // Pending expectations on a link are released when it goes down.
  RuntimeMessage unicast = EstimateBroadcast();
  unicast.to = 0;
  rt.Send(unicast);
  bus.Pop();
  ASSERT_TRUE(rt.HasUnacked());
  rt.MarkLinkDown(0);
  EXPECT_FALSE(rt.HasUnacked());
  EXPECT_FALSE(rt.IsLinkUp(0));

  // A fresh unicast to the down link is forwarded best-effort, untracked;
  // a broadcast only awaits the up links.
  rt.Send(unicast);
  EXPECT_FALSE(bus.empty());
  bus.Pop();
  EXPECT_FALSE(rt.HasUnacked());
  rt.Send(EstimateBroadcast());
  bus.Pop();
  ASSERT_TRUE(rt.HasUnacked());
  for (int site : {1, 2}) {
    RuntimeMessage ack;
    ack.type = RuntimeMessage::Type::kAck;
    ack.from = site;
    ack.to = kCoordinatorId;
    ack.seq = 3;  // third tracked send from the coordinator
    EXPECT_TRUE(DeliverTo(&rt, kCoordinatorId, ack).empty());
  }
  EXPECT_FALSE(rt.HasUnacked());

  rt.MarkLinkUp(0);
  EXPECT_TRUE(rt.IsLinkUp(0));
}

TEST(ReliableTransportTest, QueueCapEvictsOldestExpectationPerPeer) {
  InMemoryBus bus;
  ReliableTransportConfig config;
  config.max_in_flight_per_peer = 2;
  ReliableTransport rt(&bus, 2, config);
  int dead_links = 0;
  rt.SetDeadLinkHandler([&](int, const RuntimeMessage&) { ++dead_links; });

  RuntimeMessage unicast = EstimateBroadcast();
  unicast.to = 0;
  rt.Send(unicast);
  const std::int64_t oldest_seq = bus.Pop().seq;
  rt.Send(unicast);
  bus.Pop();
  // The third tracked send would exceed the cap on peer 0: the oldest
  // expectation is released — best-effort from then on, not a dead link.
  rt.Send(unicast);
  bus.Pop();
  EXPECT_EQ(rt.stats().queue_evictions, 1);
  EXPECT_EQ(dead_links, 0);

  // The evicted entry no longer retransmits; the two retained ones do.
  while (!bus.empty()) bus.Pop();
  rt.AdvanceRound();
  rt.AdvanceRound();
  std::vector<std::int64_t> retransmitted;
  while (!bus.empty()) retransmitted.push_back(bus.Pop().seq);
  EXPECT_EQ(retransmitted.size(), 2u);
  for (const std::int64_t seq : retransmitted) {
    EXPECT_NE(seq, oldest_seq);
  }
}

TEST(ReliableTransportTest, DedupWindowCompactsIntoFloorWithoutMisjudging) {
  InMemoryBus bus;
  ReliableTransportConfig config;
  config.dedup_window = 8;  // the smallest legal window
  ReliableTransport rt(&bus, 2, config);

  RuntimeMessage unicast = EstimateBroadcast();
  unicast.to = 0;
  std::vector<RuntimeMessage> delivered;
  for (int i = 0; i < 24; ++i) {
    rt.Send(unicast);
    const RuntimeMessage sent = bus.Pop();
    EXPECT_EQ(DeliverTo(&rt, 0, sent).size(), 1u);
    delivered.push_back(sent);
    while (!bus.empty()) bus.Pop();  // acks
  }
  EXPECT_GT(rt.stats().dedup_evictions, 0);

  // Seqs compacted below the floor are still recognized as duplicates: a
  // very late straggler copy must not be delivered twice.
  EXPECT_TRUE(DeliverTo(&rt, 0, delivered.front()).empty());
  EXPECT_TRUE(DeliverTo(&rt, 0, delivered.back()).empty());
  EXPECT_GE(rt.stats().duplicates_suppressed, 2);
}

TEST(ReliableTransportTest, AbandonSenderVoidsInFlightWithoutDeadVerdicts) {
  InMemoryBus bus;
  ReliableTransport rt(&bus, 3, ReliableTransportConfig{});
  int dead_links = 0;
  rt.SetDeadLinkHandler([&](int, const RuntimeMessage&) { ++dead_links; });

  rt.Send(EstimateBroadcast());
  const std::int64_t first_seq = bus.Pop().seq;
  ASSERT_TRUE(rt.HasUnacked());

  // The coordinator process died: its unacked traffic is void — the
  // receivers are fine, so no dead-link verdicts and no give-ups.
  rt.AbandonSender(kCoordinatorId);
  EXPECT_FALSE(rt.HasUnacked());
  EXPECT_EQ(dead_links, 0);
  EXPECT_EQ(rt.stats().give_ups, 0);
  for (int i = 0; i < 16; ++i) rt.AdvanceRound();
  EXPECT_TRUE(bus.empty());  // nothing left to retransmit

  // A recovered coordinator keeps numbering where it left off, so the
  // receivers' dedup windows stay coherent across the crash.
  rt.Send(EstimateBroadcast());
  EXPECT_EQ(bus.Pop().seq, first_seq + 1);
}

TEST(ReliableTransportTest, RetransmissionScheduleIsSeedDeterministic) {
  // Two transports with the same seed make identical jitter choices; a
  // different seed is allowed to differ (and does for this scenario).
  const auto schedule = [](std::uint64_t seed) {
    InMemoryBus bus;
    ReliableTransportConfig config;
    config.seed = seed;
    ReliableTransport rt(&bus, 2, config);
    rt.Send(Report(0));
    while (!bus.empty()) bus.Pop();
    std::vector<int> rounds;
    for (int i = 0; i < 64 && rt.HasUnacked(); ++i) {
      rt.AdvanceRound();
      if (!bus.empty()) rounds.push_back(i);
      while (!bus.empty()) bus.Pop();
    }
    return rounds;
  };
  EXPECT_EQ(schedule(7), schedule(7));
  EXPECT_FALSE(schedule(7).empty());
}

}  // namespace
}  // namespace sgm
