#include "core/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, BoundedStaysBelowBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.NextBounded(8)];
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child and parent should not track each other.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(33), b(33);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
}

TEST(RngTest, DeriveSeedIsDeterministic) {
  EXPECT_EQ(DeriveSeed(1, 0), DeriveSeed(1, 0));
  EXPECT_EQ(DeriveSeed(12345, 99), DeriveSeed(12345, 99));
}

TEST(RngTest, DeriveSeedSeparatesStreams) {
  // Nearby seeds and nearby stream ids must land far apart — the whole DST
  // harness keys its per-component randomness off these streams.
  std::vector<std::uint64_t> derived;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      derived.push_back(DeriveSeed(seed, stream));
    }
  }
  std::sort(derived.begin(), derived.end());
  for (std::size_t i = 1; i < derived.size(); ++i) {
    EXPECT_NE(derived[i - 1], derived[i]);
  }
  // Streams of the same seed should not produce sequential values.
  EXPECT_NE(DeriveSeed(7, 1), DeriveSeed(7, 0) + 1);
}

}  // namespace
}  // namespace sgm
