// Tests of the reliability layer's time-source abstraction
// (src/runtime/round_clock): logical and monotonic clock semantics, and the
// determinism regression — injecting a LogicalRoundClock into a faulty
// seeded run reproduces the legacy built-in counter byte-for-byte, so the
// clock seam added for the socket runtime cannot perturb the deterministic
// simulation.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "obs/telemetry.h"
#include "runtime/driver.h"
#include "runtime/round_clock.h"

namespace sgm {
namespace {

TEST(RoundClockTest, LogicalClockCountsCalls) {
  LogicalRoundClock clock;
  EXPECT_EQ(clock.CurrentRound(), 0);
  EXPECT_EQ(clock.AdvanceRound(), 1);
  EXPECT_EQ(clock.AdvanceRound(), 2);
  EXPECT_EQ(clock.AdvanceRound(), 3);
  EXPECT_EQ(clock.CurrentRound(), 3);
}

TEST(RoundClockTest, MonotonicClockDerivesRoundsFromElapsedTime) {
  MonotonicRoundClock clock(/*round_micros=*/1000);
  const std::int64_t start = clock.AdvanceRound();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // ≥10 ms elapsed at 1 ms per round: the round must have moved.
  EXPECT_GT(clock.AdvanceRound(), start);
}

TEST(RoundClockTest, MonotonicClockNeverGoesBackwards) {
  MonotonicRoundClock clock(/*round_micros=*/1);
  std::int64_t last = clock.AdvanceRound();
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t now = clock.AdvanceRound();
    ASSERT_GE(now, last);
    ASSERT_EQ(clock.CurrentRound(), now);
    last = now;
  }
}

TEST(RoundClockTest, HugeRoundDurationFreezesTheRound) {
  // An hour per round: every call within the test lands in round 0, which
  // simply means no retransmission deadline comes due.
  MonotonicRoundClock clock(/*round_micros=*/3600L * 1000 * 1000);
  EXPECT_EQ(clock.AdvanceRound(), 0);
  EXPECT_EQ(clock.AdvanceRound(), 0);
}

// One faulty seeded run through the full runtime: drops, duplicates and
// delays force the reliability layer's retransmission machinery — the code
// whose timing the clock governs — onto the hot path. Returns the JSONL
// trace (logical timestamps only, so byte equality is meaningful) plus the
// paper counters.
struct FaultyRun {
  std::string trace;
  long paper_messages = 0;
  long retransmissions_visible = 0;  // trace must show reliability activity
  Vector estimate;
};

FaultyRun RunFaultySeed(RoundClock* clock) {
  SyntheticDriftConfig gen_config;
  gen_config.num_sites = 8;
  gen_config.dim = 4;
  gen_config.seed = 17;
  gen_config.global_period = 120;
  SyntheticDriftGenerator generator(gen_config);

  const L2Norm norm;
  Telemetry telemetry;
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = generator.max_step_norm();
  config.drift_norm_cap = generator.max_drift_norm();
  config.telemetry = &telemetry;
  config.reliability.round_clock = clock;

  SimTransportConfig sim;
  sim.seed = 5;
  sim.drop_probability = 0.12;
  sim.duplicate_probability = 0.05;
  sim.max_delay_rounds = 2;

  RuntimeDriver driver(gen_config.num_sites, norm, config, sim);
  std::vector<Vector> locals;
  generator.Advance(&locals);
  driver.Initialize(locals);
  for (int t = 0; t < 80; ++t) {
    generator.Advance(&locals);
    driver.Tick(locals);
  }

  FaultyRun run;
  std::ostringstream out;
  telemetry.trace.WriteJsonl(out);
  run.trace = out.str();
  run.paper_messages = driver.sim_transport()->messages_sent();
  run.retransmissions_visible = driver.reliable_transport().stats().retransmissions;
  run.estimate = driver.coordinator().estimate();
  return run;
}

TEST(RoundClockTest, InjectedLogicalClockReplaysByteIdentically) {
  // Legacy path: no injected clock, ReliableTransport's built-in counter.
  const FaultyRun builtin = RunFaultySeed(nullptr);
  // The seam under test: an injected LogicalRoundClock must be
  // indistinguishable — same trace bytes, same counters, same estimate.
  LogicalRoundClock logical;
  const FaultyRun injected = RunFaultySeed(&logical);

  ASSERT_GT(builtin.trace.size(), 100u)
      << "faulty run produced suspiciously little trace";
  ASSERT_GT(builtin.retransmissions_visible, 0)
      << "fault rates too low to exercise the retransmission clock";
  EXPECT_EQ(builtin.trace, injected.trace);
  EXPECT_EQ(builtin.paper_messages, injected.paper_messages);
  EXPECT_EQ(builtin.retransmissions_visible, injected.retransmissions_visible);
  EXPECT_EQ(builtin.estimate, injected.estimate);
}

}  // namespace
}  // namespace sgm
