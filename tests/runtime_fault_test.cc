// Fault-tolerance tests of the runtime: lossy transports, dead sites, and
// the coordinator's degraded-sync fallback.

#include <memory>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "functions/l2_norm.h"
#include "runtime/coordinator_node.h"
#include "runtime/site_node.h"
#include "runtime/transport.h"

namespace sgm {
namespace {

/// A driver variant that can drop site→coordinator messages (by site id)
/// and randomly (by probability), modeling flaky links and dead sites.
class FaultyHarness {
 public:
  FaultyHarness(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config)
      : drop_rng_(1234) {
    coordinator_ = std::make_unique<CoordinatorNode>(num_sites, function,
                                                     config, &bus_);
    for (int i = 0; i < num_sites; ++i) {
      sites_.push_back(
          std::make_unique<SiteNode>(i, num_sites, function, config, &bus_));
    }
  }

  void KillSite(int id) { dead_.insert(dead_.end(), id); }
  void set_loss_rate(double rate) { loss_rate_ = rate; }

  void Initialize(const std::vector<Vector>& locals) {
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      sites_[i]->Observe(locals[i]);
    }
    coordinator_->Start();
    Route();
  }

  void Tick(const std::vector<Vector>& locals) {
    coordinator_->BeginCycle();
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      sites_[i]->Observe(locals[i]);
    }
    Route();
  }

  const CoordinatorNode& coordinator() const { return *coordinator_; }

 private:
  bool Dropped(const RuntimeMessage& message) {
    if (message.from >= 0) {
      for (int dead : dead_) {
        if (message.from == dead) return true;  // dead site never transmits
      }
      if (loss_rate_ > 0.0 && drop_rng_.NextBernoulli(loss_rate_)) {
        return true;
      }
    }
    return false;
  }

  void Route() {
    for (;;) {
      while (!bus_.empty()) {
        const RuntimeMessage message = bus_.Pop();
        if (Dropped(message)) continue;
        if (message.to == kCoordinatorId) {
          coordinator_->OnMessage(message);
        } else if (message.to == kBroadcastId) {
          for (auto& site : sites_) site->OnMessage(message);
        } else {
          sites_[message.to]->OnMessage(message);
        }
      }
      coordinator_->OnQuiescent();
      if (bus_.empty()) return;
    }
  }

  InMemoryBus bus_;
  std::unique_ptr<CoordinatorNode> coordinator_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
  std::vector<int> dead_;
  double loss_rate_ = 0.0;
  Rng drop_rng_;
};

RuntimeConfig Config(double threshold, double step = 10.0) {
  RuntimeConfig config;
  config.threshold = threshold;
  config.max_step_norm = step;
  return config;
}

TEST(RuntimeFaultTest, DeadSiteDegradesButCompletesSync) {
  const L2Norm norm;
  FaultyHarness harness(4, norm, Config(3.0));
  // Healthy initialization (everyone reports once)...
  harness.Initialize({Vector{1.0, 0.0}, Vector{1.0, 0.0}, Vector{1.0, 0.0},
                      Vector{1.0, 0.0}});
  EXPECT_EQ(harness.coordinator().full_syncs(), 1);
  EXPECT_EQ(harness.coordinator().degraded_syncs(), 0);

  // ...then site 3 dies and a true crossing forces a full sync: the
  // coordinator must complete it from site 3's last-known vector.
  harness.KillSite(3);
  for (int t = 0; t < 6 && !harness.coordinator().BelievesAbove(); ++t) {
    harness.Tick({Vector{6.0, 0.0}, Vector{6.0, 0.0}, Vector{6.0, 0.0},
                  Vector{6.0, 0.0}});
  }
  EXPECT_TRUE(harness.coordinator().BelievesAbove());
  EXPECT_GE(harness.coordinator().degraded_syncs(), 1);
  // Estimate uses (6+6+6+1)/4 for the first degraded sync.
  EXPECT_GT(harness.coordinator().estimate()[0], 3.0);
}

TEST(RuntimeFaultTest, LossySyncStillConverges) {
  const L2Norm norm;
  FaultyHarness harness(20, norm, Config(3.0));
  std::vector<Vector> locals(20, Vector{1.0, 0.0});
  harness.Initialize(locals);

  harness.set_loss_rate(0.3);
  for (auto& v : locals) v = Vector{5.0, 0.0};
  for (int t = 0; t < 20 && !harness.coordinator().BelievesAbove(); ++t) {
    harness.Tick(locals);
  }
  EXPECT_TRUE(harness.coordinator().BelievesAbove());
}

TEST(RuntimeFaultTest, LostViolationOnlyDelaysDetection) {
  // Even when the very first violation messages are dropped, later cycles
  // re-raise the alarm (sites re-sample each cycle) and detection lands.
  const L2Norm norm;
  FaultyHarness harness(10, norm, Config(2.5));
  std::vector<Vector> locals(10, Vector{1.0, 0.0});
  harness.Initialize(locals);

  harness.set_loss_rate(0.8);  // brutal
  for (auto& v : locals) v = Vector{6.0, 0.0};
  bool detected = false;
  for (int t = 0; t < 200 && !detected; ++t) {
    harness.Tick(locals);
    detected = harness.coordinator().BelievesAbove();
  }
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace sgm
