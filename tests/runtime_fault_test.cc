// Fault-tolerance tests of the runtime: lossy transports, dead sites, and
// the coordinator's degraded-sync fallback, driven through the seeded
// SimTransport fault layer (see docs/TESTING.md).

#include <vector>

#include <gtest/gtest.h>

#include "functions/l2_norm.h"
#include "runtime/driver.h"

namespace sgm {
namespace {

RuntimeConfig Config(double threshold, double step = 10.0) {
  RuntimeConfig config;
  config.threshold = threshold;
  config.max_step_norm = step;
  return config;
}

/// Site→coordinator loss only, like a flaky uplink; the coordinator's
/// broadcasts stay reliable (the historical fault model of these tests).
SimTransportConfig UplinkLoss(double drop, std::uint64_t seed = 1234) {
  SimTransportConfig sim;
  sim.seed = seed;
  sim.drop_probability = drop;
  sim.fault_coordinator_links = false;
  return sim;
}

TEST(RuntimeFaultTest, DeadSiteDegradesButCompletesSync) {
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(3.0), SimTransportConfig{});
  // Healthy initialization (everyone reports once)...
  driver.Initialize({Vector{1.0, 0.0}, Vector{1.0, 0.0}, Vector{1.0, 0.0},
                     Vector{1.0, 0.0}});
  EXPECT_EQ(driver.coordinator().full_syncs(), 1);
  EXPECT_EQ(driver.coordinator().degraded_syncs(), 0);

  // ...then site 3 dies and a true crossing forces a full sync: the
  // coordinator must complete it from site 3's last-known vector.
  driver.sim_transport()->CrashSite(3);
  for (int t = 0; t < 6 && !driver.coordinator().BelievesAbove(); ++t) {
    driver.Tick({Vector{6.0, 0.0}, Vector{6.0, 0.0}, Vector{6.0, 0.0},
                 Vector{6.0, 0.0}});
  }
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
  EXPECT_GE(driver.coordinator().degraded_syncs(), 1);
  // Estimate uses (6+6+6+1)/4 for the first degraded sync.
  EXPECT_GT(driver.coordinator().estimate()[0], 3.0);
}

TEST(RuntimeFaultTest, LossySyncStillConverges) {
  const L2Norm norm;
  RuntimeDriver driver(20, norm, Config(3.0), UplinkLoss(0.3));
  std::vector<Vector> locals(20, Vector{1.0, 0.0});
  driver.Initialize(locals);

  for (auto& v : locals) v = Vector{5.0, 0.0};
  for (int t = 0; t < 20 && !driver.coordinator().BelievesAbove(); ++t) {
    driver.Tick(locals);
  }
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
  EXPECT_GT(driver.sim_transport()->dropped_messages(), 0);
}

TEST(RuntimeFaultTest, LostViolationOnlyDelaysDetection) {
  // Even when the very first violation messages are dropped, later cycles
  // re-raise the alarm (sites re-sample each cycle) and detection lands.
  const L2Norm norm;
  RuntimeDriver driver(10, norm, Config(2.5), UplinkLoss(0.8));
  std::vector<Vector> locals(10, Vector{1.0, 0.0});
  driver.Initialize(locals);

  for (auto& v : locals) v = Vector{6.0, 0.0};
  bool detected = false;
  for (int t = 0; t < 200 && !detected; ++t) {
    driver.Tick(locals);
    detected = driver.coordinator().BelievesAbove();
  }
  EXPECT_TRUE(detected);
}

TEST(RuntimeFaultTest, CrashedSiteRecoversAndRejoins) {
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(3.0), SimTransportConfig{});
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);

  driver.sim_transport()->CrashSite(2);
  for (int t = 0; t < 3; ++t) driver.Tick(locals);
  driver.sim_transport()->RecoverSite(2);

  // After recovery a genuine crossing is detected with a clean (not
  // degraded) sync: the recovered site reports fresh state again.
  const long degraded_before = driver.coordinator().degraded_syncs();
  for (auto& v : locals) v = Vector{6.0, 0.0};
  for (int t = 0; t < 6 && !driver.coordinator().BelievesAbove(); ++t) {
    driver.Tick(locals);
  }
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
  EXPECT_EQ(driver.coordinator().degraded_syncs(), degraded_before);
}

}  // namespace
}  // namespace sgm
