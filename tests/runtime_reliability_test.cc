// Runtime-level tests of the reliability layer: epoch fencing at both node
// types, heartbeat liveness, the named resync/retry configuration knobs,
// and the crash → rejoin → reconverge path (see docs/DESIGN.md).

#include <vector>

#include <gtest/gtest.h>

#include "functions/l2_norm.h"
#include "runtime/driver.h"

namespace sgm {
namespace {

RuntimeConfig Config(double threshold, double step = 10.0) {
  RuntimeConfig config;
  config.threshold = threshold;
  config.max_step_norm = step;
  return config;
}

TEST(RuntimeReliabilityTest, NamedConfigDefaultsAreDocumentedValues) {
  // These knobs replaced ad-hoc constants; the defaults are load-bearing
  // (docs/DESIGN.md) and changing one is a deliberate, reviewed act.
  const RuntimeConfig config;
  EXPECT_EQ(config.empty_collection_retry_cycles, 1);
  EXPECT_EQ(config.degraded_resync_cycles, 5);
  EXPECT_EQ(config.max_sync_retries, 2);
  EXPECT_EQ(config.heartbeat_interval_cycles, 1);
  EXPECT_EQ(config.rejoin_resync_cycles, 2);
  EXPECT_EQ(config.failure_detector.suspect_after_misses, 3);
  EXPECT_EQ(config.failure_detector.dead_after_misses, 6);
  EXPECT_EQ(config.reliability.max_retransmits, 4);
  EXPECT_EQ(config.reliability.max_in_flight_per_peer, 256);
  EXPECT_EQ(config.reliability.dedup_window, 1024);
  EXPECT_EQ(config.failure_detector.threshold_jitter, 0.0);
  EXPECT_EQ(config.checkpoint_store, nullptr);
  EXPECT_EQ(config.checkpoint_interval_cycles, 25);
  EXPECT_EQ(config.recovery_resync_cycles, 2);
}

TEST(RuntimeReliabilityTest, EpochAdvancesWithEverySyncRound) {
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(3.0));
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);
  EXPECT_EQ(driver.coordinator().epoch(), 1);  // the initialization round
  for (int i = 0; i < 4; ++i) EXPECT_EQ(driver.site(i).epoch(), 1);

  // A true crossing: probe round (+1), then full sync round (+1).
  for (auto& v : locals) v = Vector{6.0, 0.0};
  for (int t = 0; t < 6 && !driver.coordinator().BelievesAbove(); ++t) {
    driver.Tick(locals);
  }
  ASSERT_TRUE(driver.coordinator().BelievesAbove());
  EXPECT_GE(driver.coordinator().epoch(), 3);
  // Reliable fan-out: every site ends the cycle on the coordinator's epoch.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(driver.site(i).epoch(), driver.coordinator().epoch());
    EXPECT_TRUE(driver.site(i).anchored());
  }
}

TEST(RuntimeReliabilityTest, SiteDropsStaleEpochMessages) {
  const L2Norm norm;
  InMemoryBus bus;
  const RuntimeConfig config = Config(3.0);
  SiteNode site(0, 2, norm, config, &bus);

  RuntimeMessage anchor;
  anchor.type = RuntimeMessage::Type::kNewEstimate;
  anchor.from = kCoordinatorId;
  anchor.to = kBroadcastId;
  anchor.epoch = 3;
  anchor.payload = Vector{1.0, 0.0};
  anchor.scalar = 2.0;
  site.OnMessage(anchor);
  ASSERT_EQ(site.epoch(), 3);
  const Vector anchored_estimate = site.estimate();

  // A stale round's estimate (epoch 2) must be dropped, not applied.
  anchor.epoch = 2;
  anchor.payload = Vector{9.0, 9.0};
  site.OnMessage(anchor);
  EXPECT_EQ(site.audit().stale_epoch_drops, 1);
  EXPECT_EQ(site.audit().stale_epoch_applied, 0);
  EXPECT_EQ(site.epoch(), 3);
  EXPECT_EQ(site.estimate()[0], anchored_estimate[0]);
}

TEST(RuntimeReliabilityTest, EpochGapUnanchorsAndRequestsRejoin) {
  const L2Norm norm;
  InMemoryBus bus;
  SiteNode site(0, 2, norm, Config(3.0), &bus);

  RuntimeMessage anchor;
  anchor.type = RuntimeMessage::Type::kNewEstimate;
  anchor.from = kCoordinatorId;
  anchor.to = kBroadcastId;
  anchor.epoch = 1;
  anchor.payload = Vector{1.0, 0.0};
  site.OnMessage(anchor);
  ASSERT_TRUE(site.anchored());
  while (!bus.empty()) bus.Pop();

  // Epoch 1 → 4: the site missed whole rounds. It must stop monitoring
  // against the stale anchor and ask to be resynchronized.
  RuntimeMessage probe;
  probe.type = RuntimeMessage::Type::kProbeRequest;
  probe.from = kCoordinatorId;
  probe.to = kBroadcastId;
  probe.epoch = 4;
  site.OnMessage(probe);
  EXPECT_FALSE(site.anchored());
  EXPECT_EQ(site.epoch(), 4);
  EXPECT_EQ(site.audit().rejoin_requests_sent, 1);
  ASSERT_FALSE(bus.empty());
  EXPECT_EQ(bus.Pop().type, RuntimeMessage::Type::kRejoinRequest);

  // A grant re-anchors and completes the handshake with fresh state.
  RuntimeMessage grant;
  grant.type = RuntimeMessage::Type::kRejoinGrant;
  grant.from = kCoordinatorId;
  grant.to = 0;
  grant.epoch = 4;
  grant.payload = Vector{2.0, 0.0};
  grant.scalar = 1.0;
  site.OnMessage(grant);
  EXPECT_TRUE(site.anchored());
  ASSERT_FALSE(bus.empty());
  EXPECT_EQ(bus.Pop().type, RuntimeMessage::Type::kStateReport);
}

TEST(RuntimeReliabilityTest, HeartbeatsKeepQuietSitesAlive) {
  const L2Norm norm;
  // Far-below-threshold workload: sites never alarm, so without heartbeats
  // the failure detector would suspect the whole quiet fleet.
  RuntimeDriver driver(6, norm, Config(1000.0));
  std::vector<Vector> locals(6, Vector{1.0, 0.0});
  driver.Initialize(locals);
  for (int t = 0; t < 30; ++t) driver.Tick(locals);

  const FailureDetector& fd = driver.coordinator().failure_detector();
  EXPECT_EQ(fd.live_count(), 6);
  EXPECT_EQ(fd.total_deaths(), 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(fd.state(i), FailureDetector::State::kAlive);
    EXPECT_GT(driver.site(i).audit().heartbeats_sent, 0);
  }
}

TEST(RuntimeReliabilityTest, QuietRecoveryRevivesWithoutAGrant) {
  const L2Norm norm;
  RuntimeConfig config = Config(1000.0);  // quiet: no sync rounds happen
  config.failure_detector.suspect_after_misses = 2;
  config.failure_detector.dead_after_misses = 4;
  RuntimeDriver driver(4, norm, config, SimTransportConfig{});
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);

  driver.sim_transport()->CrashSite(2);
  for (int t = 0; t < 6; ++t) driver.Tick(locals);
  EXPECT_EQ(driver.coordinator().failure_detector().state(2),
            FailureDetector::State::kDead);
  EXPECT_EQ(driver.coordinator().failure_detector().live_count(), 3);

  driver.sim_transport()->RecoverSite(2);
  for (int t = 0; t < 6; ++t) driver.Tick(locals);
  // No epoch advanced while the site was down: its first heartbeat carries
  // the *current* epoch, so it missed nothing and is revived directly —
  // no rejoin handshake, no resync churn.
  EXPECT_EQ(driver.coordinator().audit().rejoins_granted, 0);
  EXPECT_EQ(driver.coordinator().failure_detector().state(2),
            FailureDetector::State::kAlive);
  EXPECT_EQ(driver.coordinator().failure_detector().live_count(), 4);
  EXPECT_TRUE(driver.site(2).anchored());
}

TEST(RuntimeReliabilityTest, CrashedSiteThatMissedASyncRejoinsViaGrant) {
  const L2Norm norm;
  RuntimeDriver driver(4, norm, Config(3.0), SimTransportConfig{});
  std::vector<Vector> locals(4, Vector{1.0, 0.0});
  driver.Initialize(locals);
  const std::int64_t epoch_before = driver.coordinator().epoch();

  // A true crossing while site 2 is down: the fleet syncs without it
  // (degraded), advancing the epoch past what site 2 has seen.
  driver.sim_transport()->CrashSite(2);
  for (auto& v : locals) v = Vector{6.0, 0.0};
  for (int t = 0; t < 8 && !driver.coordinator().BelievesAbove(); ++t) {
    driver.Tick(locals);
  }
  ASSERT_TRUE(driver.coordinator().BelievesAbove());
  ASSERT_GT(driver.coordinator().epoch(), epoch_before);

  driver.sim_transport()->RecoverSite(2);
  // The site still holds its pre-crash anchor — it cannot detect the missed
  // rounds on its own; the coordinator must notice the stale epoch on its
  // next message and resync it.
  for (int t = 0;
       t < 10 && driver.site(2).epoch() < driver.coordinator().epoch();
       ++t) {
    driver.Tick(locals);
  }
  // The recovered site's stale-epoch contact triggered the rejoin
  // handshake: grant → re-anchor → fresh state → alive, epoch-current.
  EXPECT_GE(driver.coordinator().audit().rejoins_granted, 1);
  EXPECT_EQ(driver.coordinator().failure_detector().state(2),
            FailureDetector::State::kAlive);
  EXPECT_TRUE(driver.site(2).anchored());
  EXPECT_EQ(driver.site(2).epoch(), driver.coordinator().epoch());
}

TEST(RuntimeReliabilityTest, FaultFreeRunNeverRetransmits) {
  const L2Norm norm;
  RuntimeDriver driver(8, norm, Config(3.0));
  std::vector<Vector> locals(8, Vector{1.0, 0.0});
  driver.Initialize(locals);
  for (auto& v : locals) v = Vector{6.0, 0.0};
  for (int t = 0; t < 10; ++t) driver.Tick(locals);

  // Acks land in the same drain as the data they acknowledge: a reliable
  // network never reaches a retransmission deadline. (stale_epoch_drops is
  // NOT necessarily zero here — when several sites alarm in the same cycle
  // the first alarm bumps the epoch and the raced duplicates land behind
  // it; that is the coalescing path, not a fault artifact.)
  EXPECT_EQ(driver.reliable_transport().stats().retransmissions, 0);
  EXPECT_EQ(driver.reliable_transport().stats().give_ups, 0);
  EXPECT_EQ(driver.reliable_transport().stats().duplicates_suppressed, 0);
  EXPECT_EQ(driver.coordinator().audit().stale_epoch_applied, 0);
}

}  // namespace
}  // namespace sgm
