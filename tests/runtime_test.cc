// Tests of the message-passing runtime (src/runtime): protocol flow,
// accounting, belief correctness, cooldown propagation, and behavioural
// agreement with the simulator-side SGM on the same workloads.

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/sgm.h"
#include "runtime/driver.h"
#include "sim/network.h"

namespace sgm {
namespace {

RuntimeConfig BasicConfig(double threshold, double step = 1.0) {
  RuntimeConfig config;
  config.threshold = threshold;
  config.max_step_norm = step;
  return config;
}

TEST(RuntimeTest, InitializationSynchronizes) {
  const L2Norm norm;
  RuntimeDriver driver(3, norm, BasicConfig(10.0));
  driver.Initialize({Vector{1.0, 0.0}, Vector{2.0, 0.0}, Vector{3.0, 0.0}});
  EXPECT_EQ(driver.coordinator().estimate(), (Vector{2.0, 0.0}));
  EXPECT_FALSE(driver.coordinator().BelievesAbove());
  EXPECT_EQ(driver.coordinator().full_syncs(), 1);
  // Init cost: 1 state request + 3 reports + 1 estimate broadcast.
  EXPECT_EQ(driver.bus().messages_sent(), 5);
  EXPECT_EQ(driver.bus().site_messages_sent(), 3);
}

TEST(RuntimeTest, EpsilonTBroadcastMatchesSurfaceDistance) {
  const L2Norm norm;
  RuntimeDriver driver(2, norm, BasicConfig(7.0));
  driver.Initialize({Vector{3.0, 0.0}, Vector{1.0, 0.0}});
  // e = (2, 0); surface ‖v‖ = 7 → ε_T = 5.
  EXPECT_NEAR(driver.coordinator().epsilon_T(), 5.0, 1e-9);
}

TEST(RuntimeTest, QuietCyclesCostNothing) {
  const L2Norm norm;
  RuntimeDriver driver(4, norm, BasicConfig(100.0));
  const std::vector<Vector> locals(4, Vector{1.0, 1.0});
  driver.Initialize(locals);
  const long after_init = driver.bus().messages_sent();
  for (int t = 0; t < 20; ++t) driver.Tick(locals);
  EXPECT_EQ(driver.bus().messages_sent(), after_init);
}

TEST(RuntimeTest, TrueCrossingFlipsBelief) {
  const L2Norm norm;
  RuntimeConfig config = BasicConfig(3.0, /*step=*/10.0);
  RuntimeDriver driver(2, norm, config);
  driver.Initialize({Vector{1.0, 0.0}, Vector{1.0, 0.0}});
  EXPECT_FALSE(driver.coordinator().BelievesAbove());

  // Both sites jump outward; with drifts this large the sampling
  // probabilities clamp to ~1 and the alarm cascades to a full sync.
  for (int t = 0; t < 5; ++t) {
    driver.Tick({Vector{6.0, 0.0}, Vector{6.0, 0.0}});
    if (driver.coordinator().BelievesAbove()) break;
  }
  EXPECT_TRUE(driver.coordinator().BelievesAbove());
  EXPECT_GE(driver.coordinator().full_syncs(), 2);  // init + crossing
}

TEST(RuntimeTest, PartialResolutionAvoidsFullSync) {
  const L2Norm norm;
  RuntimeConfig config = BasicConfig(6.0, /*step=*/10.0);
  config.seed = 3;
  // Keep U tight so a single-site Horvitz–Thompson sample stays
  // informative: the inverse-probability weight of a lone report is
  // U/(ln(1/δ)·√N), so a large U would inflate v̂ toward the surface and
  // conservatively escalate.
  config.u_threshold_factor = 2.0;
  const int n = 40;
  RuntimeDriver driver(n, norm, config);
  std::vector<Vector> locals(n, Vector{1.0, 0.0});
  driver.Initialize(locals);

  // One outlier site swings far (its ball reaches past T = 6) while the
  // 40-site average barely moves: some cycle will sample it, alarm, and the
  // HT-vetted probe must dismiss the alarm.
  locals[0] = Vector{6.5, 0.0};
  long partials = 0;
  for (int t = 0; t < 40 && partials == 0; ++t) {
    driver.Tick(locals);
    partials = driver.coordinator().partial_resolutions();
  }
  EXPECT_GE(partials, 1);
  EXPECT_EQ(driver.coordinator().full_syncs(), 1);  // init only
  EXPECT_FALSE(driver.coordinator().BelievesAbove());
}

TEST(RuntimeTest, CooldownSuppressesRepeatAlarms) {
  const L2Norm norm;
  RuntimeConfig config = BasicConfig(6.0, /*step=*/0.5);
  config.seed = 3;
  const int n = 40;
  RuntimeDriver driver(n, norm, config);
  std::vector<Vector> locals(n, Vector{1.0, 0.0});
  driver.Initialize(locals);

  locals[0] = Vector{3.5, 0.0};  // persistent outlier, harmless average
  long first_partial_cycle = -1;
  long second_partial_cycle = -1;
  for (int t = 1; t <= 200; ++t) {
    driver.Tick(locals);
    const long partials = driver.coordinator().partial_resolutions();
    if (partials >= 1 && first_partial_cycle < 0) first_partial_cycle = t;
    if (partials >= 2 && second_partial_cycle < 0) {
      second_partial_cycle = t;
      break;
    }
  }
  if (first_partial_cycle >= 0 && second_partial_cycle >= 0) {
    // With step 0.5 and several units of room, the certified mute spans
    // multiple cycles: repeat alarms cannot be adjacent.
    EXPECT_GT(second_partial_cycle - first_partial_cycle, 1);
  }
}

TEST(RuntimeTest, AgreesWithSimulatorOnWorkloadScale) {
  // The runtime and the simulator implement the same protocol; on the same
  // Jester workload their communication costs must land in the same
  // ballpark (sampling RNG streams differ, so exact equality is not
  // expected) and both must track the truth.
  JesterLikeConfig jester;
  jester.num_sites = 120;
  jester.window = 60;
  jester.seed = 31415;
  const double threshold = 8.0;
  const long cycles = 500;
  const LInfDistance f{Vector(jester.num_buckets)};

  // Simulator side.
  JesterLikeGenerator sim_source(jester);
  SgmOptions options;
  options.escalate_after_consecutive_alarms = 0;  // runtime has no analogue
  options.escalate_probe_fraction = 0.0;
  SamplingGeometricMonitor sim_sgm(f, threshold, sim_source.max_step_norm(),
                                   options);
  sim_sgm.set_drift_norm_cap(sim_source.max_drift_norm());
  const RunResult sim_run = Simulate(&sim_source, &sim_sgm, cycles);

  // Runtime side.
  JesterLikeGenerator rt_source(jester);
  RuntimeConfig config;
  config.threshold = threshold;
  config.max_step_norm = rt_source.max_step_norm();
  config.drift_norm_cap = rt_source.max_drift_norm();
  RuntimeDriver driver(jester.num_sites, f, config);
  std::vector<Vector> locals;
  rt_source.Advance(&locals);
  driver.Initialize(locals);
  for (long t = 0; t < cycles; ++t) {
    rt_source.Advance(&locals);
    driver.Tick(locals);
  }

  const double sim_msgs =
      static_cast<double>(sim_run.metrics.total_messages());
  const double rt_msgs = static_cast<double>(driver.bus().messages_sent());
  EXPECT_LT(rt_msgs, 5.0 * sim_msgs + 200.0);
  EXPECT_LT(sim_msgs, 5.0 * rt_msgs + 200.0);

  // Belief correctness at the end: within one cycle of truth or currently
  // in an undetected-but-rare state; assert agreement with the simulator's
  // oracle-checked behaviour by checking FN cycles were rare there.
  EXPECT_LE(sim_run.metrics.false_negative_cycles(), cycles / 10);
}

TEST(RuntimeTest, SiteFirstTrialFlagConsistent) {
  const L2Norm norm;
  RuntimeConfig config = BasicConfig(5.0);
  RuntimeDriver driver(5, norm, config);
  std::vector<Vector> locals(5, Vector{1.0, 0.0});
  driver.Initialize(locals);
  driver.Tick(locals);
  // Zero drift ⇒ zero sampling probability ⇒ nobody in the first trial.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(driver.site(i).in_first_trial());
  }
}

TEST(RuntimeTest, MessageTypeNamesExist) {
  EXPECT_STREQ(RuntimeMessage::TypeName(
                   RuntimeMessage::Type::kLocalViolation),
               "LocalViolation");
  EXPECT_STREQ(RuntimeMessage::TypeName(RuntimeMessage::Type::kNewEstimate),
               "NewEstimate");
}

}  // namespace
}  // namespace sgm
