// Tests of MonitoredFunction::BuildSafeZone — the function-aware convex
// safe-zone construction used by CVGM/CVSGM (Section 4 / Example 5).
// Core invariants: the zone must contain the anchor e, lie entirely inside
// the admissible region (so that CV monitoring can never mask a crossing),
// and be exact for functions whose admissible region is itself convex.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "functions/chi_square.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linear.h"
#include "functions/linf_distance.h"
#include "geometry/safe_zone.h"

namespace sgm {
namespace {

Vector RandomNear(const SafeZone& zone, const Vector& anchor, double spread,
                  Rng* rng) {
  Vector p = anchor;
  for (std::size_t j = 0; j < p.dim(); ++j) {
    p[j] += rng->NextDouble(-spread, spread);
  }
  (void)zone;
  return p;
}

// Generic invariant: every point of the zone is admissible (f on e's side).
template <typename Function>
void ExpectZoneInsideAdmissible(const Function& f, const Vector& e,
                                double threshold, std::uint64_t seed) {
  const bool above = f.Value(e) > threshold;
  const auto zone = f.BuildSafeZone(e, threshold, above);
  ASSERT_NE(zone, nullptr);
  EXPECT_TRUE(zone->Contains(e))
      << "zone must contain the anchor; d_C(e) = " << zone->SignedDistance(e);

  Rng rng(seed);
  // Sample at the zone's own scale so interior hits actually occur.
  const double spread =
      2.0 * std::abs(zone->SignedDistance(e)) + 0.1;
  int inside_checked = 0;
  for (int trial = 0; trial < 400 && inside_checked < 80; ++trial) {
    const Vector p = RandomNear(*zone, e, spread, &rng);
    if (!zone->Contains(p)) continue;
    ++inside_checked;
    EXPECT_EQ(f.Value(p) > threshold, above)
        << "zone point " << p.ToString() << " crossed the surface";
  }
  EXPECT_GT(inside_checked, 0);
}

TEST(SafeZoneBuilderTest, L2BelowUsesExactBall) {
  const L2Norm norm;
  const auto zone = norm.BuildSafeZone(Vector{1.0, 0.0}, 5.0, false);
  auto* ball_zone = dynamic_cast<BallSafeZone*>(zone.get());
  ASSERT_NE(ball_zone, nullptr);
  EXPECT_DOUBLE_EQ(ball_zone->ball().radius(), 5.0);
  EXPECT_DOUBLE_EQ(ball_zone->ball().center().Norm(), 0.0);
}

TEST(SafeZoneBuilderTest, SelfJoinBelowUsesSqrtRadius) {
  const auto sj = L2Norm::SelfJoinSize();
  const auto zone = sj->BuildSafeZone(Vector{1.0, 0.0}, 25.0, false);
  auto* ball_zone = dynamic_cast<BallSafeZone*>(zone.get());
  ASSERT_NE(ball_zone, nullptr);
  EXPECT_DOUBLE_EQ(ball_zone->ball().radius(), 5.0);
}

TEST(SafeZoneBuilderTest, L2AboveFallsBackToInscribedBall) {
  const L2Norm norm;
  const Vector e{10.0, 0.0};
  const auto zone = norm.BuildSafeZone(e, 5.0, true);
  // Inscribed ball around e: radius = distance to the sphere = 5.
  EXPECT_NEAR(zone->SignedDistance(e), -5.0, 1e-9);
}

TEST(SafeZoneBuilderTest, LinfBelowUsesBox) {
  const LInfDistance f(Vector{1.0, 2.0});
  const auto zone = f.BuildSafeZone(Vector{1.5, 2.0}, 4.0, false);
  auto* box = dynamic_cast<BoxSafeZone*>(zone.get());
  ASSERT_NE(box, nullptr);
  EXPECT_DOUBLE_EQ(box->half_width(), 4.0);
  EXPECT_EQ(box->center(), (Vector{1.0, 2.0}));  // anchored at the reference
}

TEST(SafeZoneBuilderTest, LinearUsesExactHalfspaceBothSides) {
  const LinearFunction f(Vector{2.0, 0.0}, 1.0);  // f = 2x + 1
  // Below T = 5: {x ≤ 2}.
  const auto below = f.BuildSafeZone(Vector{0.0, 0.0}, 5.0, false);
  EXPECT_TRUE(below->Contains(Vector{1.9, 100.0}));
  EXPECT_FALSE(below->Contains(Vector{2.1, 0.0}));
  EXPECT_NEAR(below->SignedDistance(Vector{3.0, 0.0}), 1.0, 1e-12);
  // Above T = 5: {x ≥ 2}.
  const auto above = f.BuildSafeZone(Vector{5.0, 0.0}, 5.0, true);
  EXPECT_TRUE(above->Contains(Vector{2.5, -7.0}));
  EXPECT_FALSE(above->Contains(Vector{1.5, 0.0}));
}

TEST(SafeZoneBuilderTest, ZonesStayAdmissible) {
  ExpectZoneInsideAdmissible(L2Norm(), Vector{1.0, 1.0, 0.0}, 4.0, 1);
  ExpectZoneInsideAdmissible(L2Norm(true), Vector{1.0, 1.0, 0.0}, 30.0, 2);
  ExpectZoneInsideAdmissible(LInfDistance(Vector{0.0, 0.0, 0.0}),
                             Vector{0.5, -0.5, 0.0}, 3.0, 3);
  ExpectZoneInsideAdmissible(JeffreyDivergence(Vector{5.0, 5.0, 5.0}),
                             Vector{5.0, 5.0, 5.0}, 2.0, 4);
  ExpectZoneInsideAdmissible(ChiSquare(100.0), Vector{3.0, 8.0, 20.0}, 0.5,
                             5);
}

// Exactness advantage: for L∞ below-threshold, the box zone contains every
// admissible point, whereas the inscribed ball misses most of the box.
TEST(SafeZoneBuilderTest, BoxZoneBeatsInscribedBall) {
  const LInfDistance f(Vector{0.0, 0.0, 0.0});
  const Vector e(3);  // at the reference
  const double threshold = 2.0;
  const auto exact = f.BuildSafeZone(e, threshold, false);
  const auto fallback =
      f.MonitoredFunction::BuildSafeZone(e, threshold, false);

  // A box corner: admissible, inside the exact zone, outside the ball.
  const Vector corner{1.9, 1.9, 1.9};
  EXPECT_LT(f.Value(corner), threshold);
  EXPECT_TRUE(exact->Contains(corner));
  EXPECT_FALSE(fallback->Contains(corner));
}

}  // namespace
}  // namespace sgm
