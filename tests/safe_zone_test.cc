#include "geometry/safe_zone.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sgm {
namespace {

TEST(SafeZoneTest, BallZoneSignedDistance) {
  BallSafeZone zone(Ball(Vector{0.0, 0.0}, 3.0));
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{0.0, 0.0}), -3.0);
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{3.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{4.0, 0.0}), 1.0);
  EXPECT_TRUE(zone.Contains(Vector{1.0, 1.0}));
  EXPECT_FALSE(zone.Contains(Vector{3.0, 3.0}));
}

TEST(SafeZoneTest, HalfspaceZoneSignedDistance) {
  HalfspaceSafeZone zone(Halfspace(Vector{1.0, 0.0}, 2.0));
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{0.0, 9.0}), -2.0);
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{5.0, 0.0}), 3.0);
  EXPECT_TRUE(zone.Contains(Vector{2.0, -1.0}));
}

TEST(SafeZoneTest, SummaryAggregates) {
  BallSafeZone zone(Ball(Vector{0.0}, 1.0));
  std::vector<Vector> points = {Vector{0.0},    // d = -1
                                Vector{2.0},    // d = +1
                                Vector{0.5}};   // d = -0.5
  const SignedDistanceSummary s = SummarizeSignedDistances(zone, points);
  EXPECT_DOUBLE_EQ(s.sum, -0.5);
  EXPECT_NEAR(s.average, -0.5 / 3.0, 1e-12);
  EXPECT_EQ(s.positive, 1);
}

TEST(SafeZoneTest, SummaryEmptyInput) {
  BallSafeZone zone(Ball(Vector{0.0}, 1.0));
  const SignedDistanceSummary s = SummarizeSignedDistances(zone, {});
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.average, 0.0);
  EXPECT_EQ(s.positive, 0);
}

TEST(BoxSafeZoneTest, SignedDistanceInside) {
  BoxSafeZone zone(Vector{0.0, 0.0}, 3.0);
  // Center: nearest face is 3 away.
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{0.0, 0.0}), -3.0);
  // Near a face: distance to that face.
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{2.0, 1.0}), -1.0);
  // On the boundary.
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{3.0, 0.0}), 0.0);
}

TEST(BoxSafeZoneTest, SignedDistanceOutside) {
  BoxSafeZone zone(Vector{0.0, 0.0}, 3.0);
  // Face-adjacent exterior: axis distance.
  EXPECT_DOUBLE_EQ(zone.SignedDistance(Vector{5.0, 0.0}), 2.0);
  // Corner-adjacent exterior: Euclidean distance to the corner.
  EXPECT_NEAR(zone.SignedDistance(Vector{4.0, 4.0}), std::sqrt(2.0), 1e-12);
}

TEST(BoxSafeZoneTest, OffsetCenter) {
  BoxSafeZone zone(Vector{10.0, -5.0}, 2.0);
  EXPECT_TRUE(zone.Contains(Vector{11.0, -4.0}));
  EXPECT_FALSE(zone.Contains(Vector{13.0, -5.0}));
}

// Lemma 4 requires exact (or conservative) Euclidean signed distances; the
// box zone's closed form must match a brute-force boundary search.
TEST(BoxSafeZoneTest, MatchesBruteForceDistance) {
  BoxSafeZone zone(Vector{0.0, 0.0, 0.0}, 2.0);
  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    Vector p(3);
    for (int j = 0; j < 3; ++j) p[j] = rng.NextDouble(-5.0, 5.0);
    // Brute force: distance to the box is distance to the clamped point.
    Vector clamped = p;
    for (int j = 0; j < 3; ++j) {
      clamped[j] = std::clamp(clamped[j], -2.0, 2.0);
    }
    const double outside = p.DistanceTo(clamped);
    const double sd = zone.SignedDistance(p);
    if (outside > 0.0) {
      EXPECT_NEAR(sd, outside, 1e-12);
    } else {
      // Inside: distance to the nearest face.
      double nearest = 1e9;
      for (int j = 0; j < 3; ++j) {
        nearest = std::min(nearest, 2.0 - std::abs(p[j]));
      }
      EXPECT_NEAR(sd, -nearest, 1e-12);
    }
  }
}

TEST(SafeZoneTest, ToStringNonEmpty) {
  BallSafeZone ball_zone(Ball(Vector{0.0}, 1.0));
  HalfspaceSafeZone half_zone(Halfspace(Vector{1.0}, 0.0));
  EXPECT_FALSE(ball_zone.ToString().empty());
  EXPECT_FALSE(half_zone.ToString().empty());
}

}  // namespace
}  // namespace sgm
