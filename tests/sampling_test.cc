#include "estimators/sampling.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(SamplingTest, FormulaMatchesEquation4) {
  // g_i = ‖Δv_i‖ ln(1/δ) / (U √N).
  const double g = SamplingProbability(0.1, 10.0, 100, 2.0);
  EXPECT_NEAR(g, 2.0 * std::log(10.0) / (10.0 * 10.0), 1e-12);
}

TEST(SamplingTest, ZeroDriftZeroProbability) {
  EXPECT_EQ(SamplingProbability(0.1, 10.0, 100, 0.0), 0.0);
}

TEST(SamplingTest, ClampedToOne) {
  EXPECT_EQ(SamplingProbability(0.01, 0.1, 4, 100.0), 1.0);
}

TEST(SamplingTest, Example3Ranges) {
  // Paper Example 3 table: δ = 0.1, N = 100, U = 17.3·... — the g_i range
  // upper ends: ‖Δv_i‖ ≤ √3·10 = U gives g_max = ln(1/δ)/√N.
  EXPECT_NEAR(SamplingProbability(0.1, 17.3, 100, 17.3),
              std::log(10.0) / 10.0, 1e-9);  // ≈ 0.23
  EXPECT_NEAR(SamplingProbability(0.05, 17.3, 961, 17.3),
              std::log(20.0) / 31.0, 1e-9);  // ≈ 0.097
}

TEST(SamplingTest, MonotoneInDriftAndDelta) {
  EXPECT_LT(SamplingProbability(0.1, 10.0, 100, 1.0),
            SamplingProbability(0.1, 10.0, 100, 2.0));
  // Smaller δ → larger g (paper: fewer FNs requires more sampling).
  EXPECT_LT(SamplingProbability(0.2, 10.0, 100, 1.0),
            SamplingProbability(0.05, 10.0, 100, 1.0));
}

TEST(SamplingTest, CvVariantUsesAbsoluteDistance) {
  EXPECT_EQ(SamplingProbabilityCV(0.1, 10.0, 100, -2.0),
            SamplingProbabilityCV(0.1, 10.0, 100, 2.0));
  EXPECT_EQ(SamplingProbabilityCV(0.1, 10.0, 100, -2.0),
            SamplingProbability(0.1, 10.0, 100, 2.0));
}

TEST(SamplingTest, BernoulliMatchesExpectedSampleSize) {
  // N · g = ln(1/δ)√N — same expected size as the drift-weighted bound.
  const double g = BernoulliSamplingProbability(0.1, 400);
  EXPECT_NEAR(400.0 * g, ExpectedSampleBound(0.1, 400), 1e-9);
}

TEST(SamplingTest, ExpectedSampleBoundSqrtN) {
  EXPECT_NEAR(ExpectedSampleBound(0.1, 100), std::log(10.0) * 10.0, 1e-12);
  // Paper Example-3 table: δ=0.1, N=100 → 24 (they round ln(10)·10 ≈ 23.03).
  EXPECT_NEAR(ExpectedSampleBound(0.1, 100), 23.03, 0.01);
  EXPECT_NEAR(ExpectedSampleBound(0.05, 961), 92.9, 0.1);  // table: 93
}

TEST(SamplingTest, SampleBoundSublinearInN) {
  // The ratio bound/N must shrink with N (the paper's scalability point).
  const double ratio_small = ExpectedSampleBound(0.1, 100) / 100.0;
  const double ratio_large = ExpectedSampleBound(0.1, 10000) / 10000.0;
  EXPECT_LT(ratio_large, ratio_small);
}

// ----------------------------------------------------------- trial counts --

struct Table2Row {
  double delta;
  int num_sites;
  int expected_m;
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

// The paper's Table 2: M values for (δ, N).
TEST_P(Table2Test, MatchesPaper) {
  const Table2Row row = GetParam();
  EXPECT_EQ(NumTrials(row.delta, row.num_sites), row.expected_m);
}

// The residual failure probability after M trials must be ≤ 0.01 and match
// the table's order of magnitude.
TEST_P(Table2Test, FailureBelowOnePercent) {
  const Table2Row row = GetParam();
  const int m = NumTrials(row.delta, row.num_sites);
  EXPECT_LE(TrackingFailureProbability(row.delta, row.num_sites, m), 0.01);
}

// Expected M per the ceiling in Lemma 2(c). These match the paper's Table 2
// except (δ=0.1, N=500), where the raw value 2.04 ceils to 3 while the
// paper's "~M" column reports the rounded 2 (its failure column, 0.01,
// confirms they used M = 2 there).
INSTANTIATE_TEST_SUITE_P(PaperTable2, Table2Test,
                         ::testing::Values(Table2Row{0.05, 100, 4},
                                           Table2Row{0.05, 500, 3},
                                           Table2Row{0.05, 1000, 2},
                                           Table2Row{0.1, 100, 4},
                                           Table2Row{0.1, 500, 3},
                                           Table2Row{0.1, 1000, 2},
                                           Table2Row{0.2, 100, 3},
                                           Table2Row{0.2, 500, 2},
                                           Table2Row{0.2, 1000, 2}));

TEST(SamplingTest, TrialsShrinkWithN) {
  EXPECT_GE(NumTrials(0.1, 100), NumTrials(0.1, 1000));
  EXPECT_GE(NumTrials(0.1, 1000), NumTrials(0.1, 100000));
}

TEST(SamplingTest, CvTrialsShrinkWithDelta) {
  // Figure 8's inversion vs Figure 3: in the CV scheme smaller δ → larger
  // expected |K| → fewer trials needed.
  EXPECT_GE(NumTrialsCV(0.2, 500), NumTrialsCV(0.05, 500));
}

TEST(SamplingTest, CvTrialsPracticalRange) {
  // Figure 8: 2–4 trials suffice in highly distributed settings.
  for (int n : {500, 1000, 5000}) {
    for (double delta : {0.05, 0.1, 0.2}) {
      const int m = NumTrialsCV(delta, n);
      EXPECT_GE(m, 1);
      EXPECT_LE(m, 6) << "n=" << n << " delta=" << delta;
    }
  }
}

// ------------------------------------------------------------- FN bounds --

TEST(FalseNegativeBoundTest, DecreasesWithCrossingSites) {
  const double one = FalseNegativeBound(0.1, 400, 1, 1, 5.0, 10.0);
  const double many = FalseNegativeBound(0.1, 400, 1, 50, 5.0, 10.0);
  EXPECT_LT(many, one);
}

TEST(FalseNegativeBoundTest, DecreasesWithTrials) {
  EXPECT_LT(FalseNegativeBound(0.1, 400, 4, 5, 5.0, 10.0),
            FalseNegativeBound(0.1, 400, 1, 5, 5.0, 10.0));
}

TEST(FalseNegativeBoundTest, NoCrossingSitesGivesTrivialBound) {
  EXPECT_DOUBLE_EQ(FalseNegativeBound(0.1, 400, 1, 0, 5.0, 10.0), 1.0);
}

TEST(FalseNegativeBoundTest, MatchesClosedForm) {
  // δ^(|Z|·M·ε_T/(U·√N)).
  const double bound = FalseNegativeBound(0.1, 100, 2, 3, 4.0, 8.0);
  EXPECT_NEAR(bound, std::pow(0.1, 3.0 * 2.0 * 4.0 / (8.0 * 10.0)), 1e-12);
}

}  // namespace
}  // namespace sgm
