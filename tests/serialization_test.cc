#include "runtime/serialization.h"

#include <cstring>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sgm {
namespace {

RuntimeMessage SampleMessage() {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kDriftReport;
  m.from = 17;
  m.to = kCoordinatorId;
  m.scalar = 0.125;
  m.payload = Vector{1.5, -2.25, 0.0, 1e-9};
  return m;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  const RuntimeMessage original = SampleMessage();
  const auto wire = EncodeMessage(original);
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const RuntimeMessage& m = decoded.ValueOrDie();
  EXPECT_EQ(m.type, original.type);
  EXPECT_EQ(m.from, original.from);
  EXPECT_EQ(m.to, original.to);
  EXPECT_EQ(m.scalar, original.scalar);
  EXPECT_EQ(m.payload, original.payload);
}

TEST(SerializationTest, RoundTripAllTypes) {
  using Type = RuntimeMessage::Type;
  for (Type type : {Type::kLocalViolation, Type::kProbeRequest,
                    Type::kDriftReport, Type::kResolved,
                    Type::kFullStateRequest, Type::kStateReport,
                    Type::kNewEstimate}) {
    RuntimeMessage m;
    m.type = type;
    m.from = 3;
    m.to = kBroadcastId;
    const auto wire = EncodeMessage(m);
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie().type, type);
  }
}

TEST(SerializationTest, EmptyPayloadRoundTrips) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kProbeRequest;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().payload.dim(), 0u);
}

TEST(SerializationTest, RejectsEmptyBuffer) {
  EXPECT_FALSE(DecodeMessage({}).ok());
}

TEST(SerializationTest, RejectsUnknownType) {
  auto wire = EncodeMessage(SampleMessage());
  wire[0] = 200;
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsTruncation) {
  const auto wire = EncodeMessage(SampleMessage());
  // Every strict prefix must be rejected, not crash.
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + keep);
    EXPECT_FALSE(DecodeMessage(prefix).ok()) << "prefix length " << keep;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  auto wire = EncodeMessage(SampleMessage());
  wire.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(SerializationTest, RejectsHugeDimension) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kStateReport;
  auto wire = EncodeMessage(m);
  // Overwrite the dimension field (offset 1+4+4+8 = 17) with a huge value.
  const std::uint32_t huge = kMaxWireDimension + 1;
  std::memcpy(wire.data() + 17, &huge, sizeof(huge));
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializationTest, RandomGarbageNeverCrashes) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(64));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    // Must either parse or fail cleanly; any crash fails the test run.
    (void)DecodeMessage(garbage);
  }
}

}  // namespace
}  // namespace sgm
