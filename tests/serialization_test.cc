#include "runtime/serialization.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "core/crc32c.h"
#include "core/rng.h"

namespace sgm {
namespace {

/// Recomputes the v4 CRC trailer after a deliberate field mutation, so a
/// test exercises the *field* validation rather than tripping the checksum.
void FixCrc(std::vector<std::uint8_t>* wire) {
  ASSERT_GE(wire->size(), 4u);
  const std::uint32_t crc = Crc32c(wire->data(), wire->size() - 4);
  std::memcpy(wire->data() + wire->size() - 4, &crc, sizeof(crc));
}

RuntimeMessage SampleMessage() {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kDriftReport;
  m.from = 17;
  m.to = kCoordinatorId;
  m.epoch = 42;
  m.seq = 1009;
  m.scalar = 0.125;
  m.payload = Vector{1.5, -2.25, 0.0, 1e-9};
  return m;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  const RuntimeMessage original = SampleMessage();
  const auto wire = EncodeMessage(original);
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const RuntimeMessage& m = decoded.ValueOrDie();
  EXPECT_EQ(m.type, original.type);
  EXPECT_EQ(m.from, original.from);
  EXPECT_EQ(m.to, original.to);
  EXPECT_EQ(m.epoch, original.epoch);
  EXPECT_EQ(m.seq, original.seq);
  EXPECT_EQ(m.retransmit, original.retransmit);
  EXPECT_EQ(m.scalar, original.scalar);
  EXPECT_EQ(m.payload, original.payload);
}

TEST(SerializationTest, RoundTripAllTypes) {
  using Type = RuntimeMessage::Type;
  for (Type type : {Type::kLocalViolation, Type::kProbeRequest,
                    Type::kDriftReport, Type::kResolved,
                    Type::kFullStateRequest, Type::kStateReport,
                    Type::kNewEstimate, Type::kAck, Type::kHeartbeat,
                    Type::kRejoinRequest, Type::kRejoinGrant}) {
    RuntimeMessage m;
    m.type = type;
    m.from = 3;
    m.to = kBroadcastId;
    const auto wire = EncodeMessage(m);
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie().type, type);
  }
}

// The reliability layer's bookkeeping fields (epoch, seq, retransmit flag)
// must survive the wire intact — a mangled epoch would defeat the fence, a
// mangled seq the dedup.
TEST(SerializationTest, ReliabilityFieldsRoundTrip) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kAck;
  m.from = 5;
  m.to = 9;
  m.epoch = (std::int64_t{1} << 40) + 3;  // exercises the full i64 width
  m.seq = (std::int64_t{1} << 33) + 7;
  m.retransmit = true;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().epoch, m.epoch);
  EXPECT_EQ(decoded.ValueOrDie().seq, m.seq);
  EXPECT_TRUE(decoded.ValueOrDie().retransmit);
}

// Wire v3 carries the causal span pair; both must survive the full i64
// width — trace reconstruction keys span trees on exact ids.
TEST(SerializationTest, SpanFieldsRoundTrip) {
  RuntimeMessage m = SampleMessage();
  m.span = (std::int64_t{1} << 41) + 13;
  m.parent_span = (std::int64_t{1} << 35) + 5;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().span, m.span);
  EXPECT_EQ(decoded.ValueOrDie().parent_span, m.parent_span);
}

/// Hand-builds a v2 (0xA2) frame: the pre-span layout, 39-byte header.
std::vector<std::uint8_t> EncodeV2Frame(const RuntimeMessage& m) {
  std::vector<std::uint8_t> wire;
  auto append = [&wire](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    wire.insert(wire.end(), bytes, bytes + size);
  };
  const std::uint8_t version = kWireFormatVersionV2;
  const std::uint8_t type = static_cast<std::uint8_t>(m.type);
  const std::uint8_t flags = m.retransmit ? 0x01 : 0x00;
  const std::uint32_t dim = static_cast<std::uint32_t>(m.payload.dim());
  append(&version, 1);
  append(&type, 1);
  append(&flags, 1);
  append(&m.from, 4);
  append(&m.to, 4);
  append(&m.epoch, 8);
  append(&m.seq, 8);
  append(&m.scalar, 8);
  append(&dim, 4);
  for (std::size_t j = 0; j < m.payload.dim(); ++j) {
    const double value = m.payload[j];
    append(&value, 8);
  }
  return wire;
}

// Backward compatibility: a peer still emitting v2 frames (no span fields)
// must keep interoperating through a rolling upgrade — the frame decodes
// with span/parent_span = 0, everything else intact.
TEST(SerializationTest, AcceptsV2FramesWithoutSpans) {
  const RuntimeMessage original = SampleMessage();
  const auto v2 = EncodeV2Frame(original);
  ASSERT_EQ(v2.size(), 39u + 8u * original.payload.dim());
  auto decoded = DecodeMessage(v2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const RuntimeMessage& m = decoded.ValueOrDie();
  EXPECT_EQ(m.type, original.type);
  EXPECT_EQ(m.from, original.from);
  EXPECT_EQ(m.to, original.to);
  EXPECT_EQ(m.epoch, original.epoch);
  EXPECT_EQ(m.seq, original.seq);
  EXPECT_EQ(m.scalar, original.scalar);
  EXPECT_EQ(m.payload, original.payload);
  EXPECT_EQ(m.span, 0);
  EXPECT_EQ(m.parent_span, 0);
}

TEST(SerializationTest, RejectsTruncatedV2Frames) {
  const auto v2 = EncodeV2Frame(SampleMessage());
  for (std::size_t keep = 0; keep < v2.size(); ++keep) {
    const std::vector<std::uint8_t> prefix(v2.begin(), v2.begin() + keep);
    EXPECT_FALSE(DecodeMessage(prefix).ok()) << "v2 prefix length " << keep;
  }
}

TEST(SerializationTest, EmptyPayloadRoundTrips) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kProbeRequest;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().payload.dim(), 0u);
}

// Golden wire sizes: 55 bytes of v4 header fields (u8 version + u8 type +
// u8 flags + i32 from + i32 to + i64 epoch + i64 seq + i64 span +
// i64 parent_span + f64 scalar + u32 dim) plus 8 bytes per payload double,
// plus the trailing u32 CRC32C over everything before it. These pin the
// format — any change to the layout must update the goldens knowingly.
TEST(SerializationTest, GoldenWireSizesPerKind) {
  using Type = RuntimeMessage::Type;
  constexpr std::size_t kHeader = 55 + 4;  // fields + CRC trailer

  const struct {
    Type type;
    std::size_t payload_dim;
    std::size_t wire_size;
  } kGolden[] = {
      {Type::kLocalViolation, 0, kHeader},
      {Type::kProbeRequest, 0, kHeader},
      {Type::kFullStateRequest, 0, kHeader},
      {Type::kResolved, 0, kHeader},           // mute count rides in scalar
      {Type::kAck, 0, kHeader},
      {Type::kHeartbeat, 0, kHeader},
      {Type::kRejoinRequest, 0, kHeader},
      {Type::kDriftReport, 8, kHeader + 64},   // drift vector, g_i in scalar
      {Type::kStateReport, 8, kHeader + 64},
      {Type::kNewEstimate, 8, kHeader + 64},
      {Type::kRejoinGrant, 8, kHeader + 64},   // estimate, ε_T in scalar
      {Type::kStateReport, 100, kHeader + 800},
  };
  for (const auto& golden : kGolden) {
    RuntimeMessage m;
    m.type = golden.type;
    m.from = 1;
    m.to = kCoordinatorId;
    m.scalar = 0.5;
    if (golden.payload_dim > 0) m.payload = Vector(golden.payload_dim);
    const auto wire = EncodeMessage(m);
    EXPECT_EQ(wire.size(), golden.wire_size)
        << RuntimeMessage::TypeName(golden.type) << " dim "
        << golden.payload_dim;
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie().payload.dim(), golden.payload_dim);
  }
}

// The in-memory accounting (16-byte header + 8 bytes per *semantic*
// payload double) and the wire encoding (59-byte frame + raw vector) count
// slightly different things: the frame carries the reliability envelope
// (version, flags, epoch, seq), the causal span pair, the scalar field and
// the CRC trailer, which the accounting bills abstractly. The divergence
// must stay below six doubles per message — the accounting remains a
// faithful proxy for real wire cost.
TEST(SerializationTest, AccountingTracksWireSizePerKind) {
  using Type = RuntimeMessage::Type;
  const struct {
    Type type;
    std::size_t payload_dim;  // what this kind carries as a vector
  } kKinds[] = {
      {Type::kLocalViolation, 0}, {Type::kProbeRequest, 0},
      {Type::kFullStateRequest, 0}, {Type::kResolved, 0},
      {Type::kAck, 0},            {Type::kHeartbeat, 0},
      {Type::kRejoinRequest, 0},
      {Type::kDriftReport, 6},    {Type::kStateReport, 6},
      {Type::kNewEstimate, 6},    {Type::kRejoinGrant, 6},
  };
  for (const auto& kind : kKinds) {
    RuntimeMessage m;
    m.type = kind.type;
    m.from = 0;
    m.to = kCoordinatorId;
    m.scalar = 1.0;
    if (kind.payload_dim > 0) m.payload = Vector(kind.payload_dim);
    const double accounted = 16.0 + 8.0 * m.PayloadDoubles();
    const double wire = static_cast<double>(EncodeMessage(m).size());
    EXPECT_LT(std::abs(wire - accounted), 48.0)
        << RuntimeMessage::TypeName(kind.type) << ": wire " << wire
        << " vs accounted " << accounted;
  }
}

TEST(SerializationTest, RejectsEmptyBuffer) {
  EXPECT_FALSE(DecodeMessage({}).ok());
}

TEST(SerializationTest, RejectsUnknownVersion) {
  auto wire = EncodeMessage(SampleMessage());
  ASSERT_EQ(wire[0], kWireFormatVersion);
  wire[0] = kWireFormatVersion + 1;
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// Forward compatibility: pre-reliability (v1) frames led with the type
// byte, whose legal values (0..6) can never equal kWireFormatVersion — an
// old-format message is rejected deterministically at the version check,
// never misparsed into a half-valid message.
TEST(SerializationTest, RejectsLegacyV1Frames) {
  ASSERT_GT(kWireFormatVersion, 6) << "v1 type bytes must not collide";
  for (std::uint8_t legacy_type = 0; legacy_type <= 6; ++legacy_type) {
    // A v1 frame: u8 type + i32 from + i32 to + f64 scalar + u32 dim = 21B.
    std::vector<std::uint8_t> v1(21, 0);
    v1[0] = legacy_type;
    auto decoded = DecodeMessage(v1);
    EXPECT_FALSE(decoded.ok()) << "legacy type " << int{legacy_type};
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SerializationTest, RejectsUnknownType) {
  auto wire = EncodeMessage(SampleMessage());
  wire[1] = 200;  // type byte follows the version byte
  FixCrc(&wire);  // exercise the type check, not the checksum
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsUnknownFlags) {
  auto wire = EncodeMessage(SampleMessage());
  wire[2] |= 0x80;  // a flag bit this version does not define
  FixCrc(&wire);  // exercise the flag check, not the checksum
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsTruncation) {
  const auto wire = EncodeMessage(SampleMessage());
  // Every strict prefix must be rejected, not crash.
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + keep);
    EXPECT_FALSE(DecodeMessage(prefix).ok()) << "prefix length " << keep;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  auto wire = EncodeMessage(SampleMessage());
  wire.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(SerializationTest, RejectsHugeDimension) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kStateReport;
  auto wire = EncodeMessage(m);
  // Overwrite the dimension field (offset 1+1+1+4+4+8+8+8+8+8 = 51) with a
  // huge value.
  const std::uint32_t huge = kMaxWireDimension + 1;
  std::memcpy(wire.data() + 51, &huge, sizeof(huge));
  FixCrc(&wire);  // exercise the dimension cap, not the checksum
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

/// Strips the CRC trailer off a v4 frame and relabels it v3 — exactly the
/// layout a pre-checksum peer emits.
std::vector<std::uint8_t> AsV3Frame(std::vector<std::uint8_t> wire) {
  wire.resize(wire.size() - 4);
  wire[0] = kWireFormatVersionV3;
  return wire;
}

// Backward compatibility: a peer still emitting v3 frames (spans, no CRC)
// keeps interoperating through a rolling upgrade.
TEST(SerializationTest, AcceptsV3FramesWithoutChecksum) {
  RuntimeMessage original = SampleMessage();
  original.span = 77;
  original.parent_span = 33;
  auto decoded = DecodeMessage(AsV3Frame(EncodeMessage(original)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const RuntimeMessage& m = decoded.ValueOrDie();
  EXPECT_EQ(m.epoch, original.epoch);
  EXPECT_EQ(m.span, original.span);
  EXPECT_EQ(m.parent_span, original.parent_span);
  EXPECT_EQ(m.payload, original.payload);
}

// The corruption-detection guarantee the bit-flip fault mode relies on:
// EVERY single-bit flip of a v4 frame must be rejected, never decoded into
// a mangled message. (A flip of the version byte must also fail: 0xA4's
// single-bit neighbors include neither 0xA2 nor 0xA3, and non-version
// bytes are vouched for by the CRC.)
TEST(SerializationTest, EverySingleBitFlipIsDetected) {
  const auto wire = EncodeMessage(SampleMessage());
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(DecodeMessage(flipped).ok()) << "bit " << bit;
  }
}

TEST(SerializationTest, RandomGarbageNeverCrashes) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(64));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    // Must either parse or fail cleanly; any crash fails the test run.
    (void)DecodeMessage(garbage);
  }
}

}  // namespace
}  // namespace sgm
