#include "runtime/serialization.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sgm {
namespace {

RuntimeMessage SampleMessage() {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kDriftReport;
  m.from = 17;
  m.to = kCoordinatorId;
  m.scalar = 0.125;
  m.payload = Vector{1.5, -2.25, 0.0, 1e-9};
  return m;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  const RuntimeMessage original = SampleMessage();
  const auto wire = EncodeMessage(original);
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const RuntimeMessage& m = decoded.ValueOrDie();
  EXPECT_EQ(m.type, original.type);
  EXPECT_EQ(m.from, original.from);
  EXPECT_EQ(m.to, original.to);
  EXPECT_EQ(m.scalar, original.scalar);
  EXPECT_EQ(m.payload, original.payload);
}

TEST(SerializationTest, RoundTripAllTypes) {
  using Type = RuntimeMessage::Type;
  for (Type type : {Type::kLocalViolation, Type::kProbeRequest,
                    Type::kDriftReport, Type::kResolved,
                    Type::kFullStateRequest, Type::kStateReport,
                    Type::kNewEstimate}) {
    RuntimeMessage m;
    m.type = type;
    m.from = 3;
    m.to = kBroadcastId;
    const auto wire = EncodeMessage(m);
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie().type, type);
  }
}

TEST(SerializationTest, EmptyPayloadRoundTrips) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kProbeRequest;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().payload.dim(), 0u);
}

// Golden wire sizes: 21-byte header (u8 type + i32 from + i32 to +
// f64 scalar + u32 dim) plus 8 bytes per payload double. These pin the
// format — any change to the layout must update the goldens knowingly.
TEST(SerializationTest, GoldenWireSizesPerKind) {
  using Type = RuntimeMessage::Type;
  constexpr std::size_t kHeader = 21;

  const struct {
    Type type;
    std::size_t payload_dim;
    std::size_t wire_size;
  } kGolden[] = {
      {Type::kLocalViolation, 0, kHeader},
      {Type::kProbeRequest, 0, kHeader},
      {Type::kFullStateRequest, 0, kHeader},
      {Type::kResolved, 0, kHeader},           // mute count rides in scalar
      {Type::kDriftReport, 8, kHeader + 64},   // drift vector, g_i in scalar
      {Type::kStateReport, 8, kHeader + 64},
      {Type::kNewEstimate, 8, kHeader + 64},
      {Type::kStateReport, 100, kHeader + 800},
  };
  for (const auto& golden : kGolden) {
    RuntimeMessage m;
    m.type = golden.type;
    m.from = 1;
    m.to = kCoordinatorId;
    m.scalar = 0.5;
    if (golden.payload_dim > 0) m.payload = Vector(golden.payload_dim);
    const auto wire = EncodeMessage(m);
    EXPECT_EQ(wire.size(), golden.wire_size)
        << RuntimeMessage::TypeName(golden.type) << " dim "
        << golden.payload_dim;
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ValueOrDie().payload.dim(), golden.payload_dim);
  }
}

// The in-memory accounting (16-byte header + 8 bytes per *semantic*
// payload double) and the wire encoding (21-byte frame + raw vector) count
// slightly different things: DriftReport's g_i and Resolved's mute count
// ride in the frame's scalar field, which the accounting bills as payload.
// The divergence must stay under one double per message — the accounting
// remains a faithful proxy for real wire cost.
TEST(SerializationTest, AccountingTracksWireSizePerKind) {
  using Type = RuntimeMessage::Type;
  const struct {
    Type type;
    std::size_t payload_dim;  // what this kind carries as a vector
  } kKinds[] = {
      {Type::kLocalViolation, 0}, {Type::kProbeRequest, 0},
      {Type::kFullStateRequest, 0}, {Type::kResolved, 0},
      {Type::kDriftReport, 6},    {Type::kStateReport, 6},
      {Type::kNewEstimate, 6},
  };
  for (const auto& kind : kKinds) {
    RuntimeMessage m;
    m.type = kind.type;
    m.from = 0;
    m.to = kCoordinatorId;
    m.scalar = 1.0;
    if (kind.payload_dim > 0) m.payload = Vector(kind.payload_dim);
    const double accounted = 16.0 + 8.0 * m.PayloadDoubles();
    const double wire = static_cast<double>(EncodeMessage(m).size());
    EXPECT_LT(std::abs(wire - accounted), 8.0)
        << RuntimeMessage::TypeName(kind.type) << ": wire " << wire
        << " vs accounted " << accounted;
  }
}

TEST(SerializationTest, RejectsEmptyBuffer) {
  EXPECT_FALSE(DecodeMessage({}).ok());
}

TEST(SerializationTest, RejectsUnknownType) {
  auto wire = EncodeMessage(SampleMessage());
  wire[0] = 200;
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsTruncation) {
  const auto wire = EncodeMessage(SampleMessage());
  // Every strict prefix must be rejected, not crash.
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + keep);
    EXPECT_FALSE(DecodeMessage(prefix).ok()) << "prefix length " << keep;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  auto wire = EncodeMessage(SampleMessage());
  wire.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(SerializationTest, RejectsHugeDimension) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kStateReport;
  auto wire = EncodeMessage(m);
  // Overwrite the dimension field (offset 1+4+4+8 = 17) with a huge value.
  const std::uint32_t huge = kMaxWireDimension + 1;
  std::memcpy(wire.data() + 17, &huge, sizeof(huge));
  auto decoded = DecodeMessage(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializationTest, RandomGarbageNeverCrashes) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(64));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    // Must either parse or fail cleanly; any crash fails the test run.
    (void)DecodeMessage(garbage);
  }
}

}  // namespace
}  // namespace sgm
