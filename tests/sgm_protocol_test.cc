// Behavioural tests of SGM / M-SGM / the Bernoulli variant.

#include <gtest/gtest.h>

#include "data/jester_like.h"
#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/bernoulli_gm.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/network.h"
#include "test_util.h"

namespace sgm {
namespace {

SgmOptions DefaultOptions(double delta = 0.1, int trials = 1) {
  SgmOptions options;
  options.delta = delta;
  options.num_trials = trials;
  return options;
}

TEST(SgmTest, NamesFollowConfiguration) {
  L2Norm f(false);
  SamplingGeometricMonitor sgm(f, 5.0, 1.0, DefaultOptions(0.1, 1));
  SamplingGeometricMonitor msgm(f, 5.0, 1.0, DefaultOptions(0.1, 3));
  auto bern = MakeBernoulliMonitor(f, 5.0, 1.0, 0.1);
  EXPECT_EQ(bern->name(), "Bernoulli");
  // SGM/M-SGM names resolve after initialization.
  std::vector<std::vector<Vector>> frames(2, {Vector{1.0}, Vector{1.0}});
  ScriptedSource s1(frames, 1.0), s2(frames, 1.0);
  Simulate(&s1, &sgm, 1);
  Simulate(&s2, &msgm, 1);
  EXPECT_EQ(sgm.name(), "SGM");
  EXPECT_EQ(msgm.name(), "M-SGM");
}

TEST(SgmTest, AutoTrialsUseLemmaFormula) {
  SyntheticDriftConfig config;
  config.num_sites = 500;
  config.dim = 2;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  SamplingGeometricMonitor sgm(f, 100.0, source.max_step_norm(),
                               DefaultOptions(0.05, /*trials=*/0));
  Simulate(&source, &sgm, 2);
  EXPECT_EQ(sgm.effective_trials(), 3);  // Table 2: δ=0.05, N=500 → 3
}

TEST(SgmTest, QuietStreamOnlyInitCost) {
  std::vector<std::vector<Vector>> frames(
      10, {Vector{1.0, 0.0}, Vector{0.0, 1.0}, Vector{0.5, 0.5}});
  ScriptedSource source(std::move(frames), 1.0);
  L2Norm f(false);
  SamplingGeometricMonitor sgm(f, 10.0, source.max_step_norm(),
                               DefaultOptions());
  const RunResult result = Simulate(&source, &sgm, 9);
  EXPECT_EQ(result.metrics.total_messages(), 4);  // N + 1 init only
  EXPECT_EQ(result.metrics.full_syncs(), 0);
}

// Requirement 1 consequence: on the same stream with the same constraints,
// a cycle in which SGM raises a local alarm is a cycle in which GM would
// have alarmed too (SGM's monitored balls are a subset of GM's).
TEST(SgmTest, AlarmsAreSubsetOfGmAlarms) {
  SyntheticDriftConfig config;
  config.num_sites = 60;
  config.dim = 3;
  config.seed = 404;
  SyntheticDriftGenerator gm_source(config);
  SyntheticDriftGenerator sgm_source(config);  // identical stream

  L2Norm f(false);
  const double T = 2.5;
  GeometricMonitor gm(f, T, gm_source.max_step_norm());
  SamplingGeometricMonitor sgm(f, T, sgm_source.max_step_norm(),
                               DefaultOptions());

  std::vector<Vector> gm_locals, sgm_locals;
  gm_source.Advance(&gm_locals);
  sgm_source.Advance(&sgm_locals);
  Metrics gm_metrics, sgm_metrics;
  gm.Initialize(gm_locals, &gm_metrics);
  sgm.Initialize(sgm_locals, &sgm_metrics);

  int sgm_alarms = 0, gm_missing = 0;
  for (int t = 0; t < 300; ++t) {
    gm_source.Advance(&gm_locals);
    sgm_source.Advance(&sgm_locals);
    const CycleOutcome gm_out = gm.OnCycle(gm_locals, &gm_metrics);
    const CycleOutcome sgm_out = sgm.OnCycle(sgm_locals, &sgm_metrics);
    if (sgm_out.local_alarm) {
      ++sgm_alarms;
      // Protocols may be out of phase after their first differing sync; only
      // compare while their sync clocks agree.
      if (gm.cycles_since_sync() == sgm.cycles_since_sync() &&
          !gm_out.local_alarm) {
        ++gm_missing;
      }
    }
  }
  EXPECT_EQ(gm_missing, 0);
  (void)sgm_alarms;
}

// The headline scalability claim, in miniature: at a few hundred sites on a
// windowed (bounded-drift) workload, SGM transmits several times fewer
// messages than GM. (The paper reports one-to-two orders of magnitude on the
// full-scale Jester runs; see bench/fig11_jester_linf.)
TEST(SgmTest, BeatsGmOnMessagesAtScale) {
  JesterLikeConfig config;
  config.num_sites = 300;
  config.window = 60;
  config.num_buckets = 12;
  config.seed = 11;

  LInfDistance f(Vector(12));
  const double T = 2.0;

  JesterLikeGenerator gm_source(config);
  GeometricMonitor gm(f, T, gm_source.max_step_norm());
  gm.set_drift_norm_cap(gm_source.max_drift_norm());
  const RunResult gm_result = Simulate(&gm_source, &gm, 400);

  JesterLikeGenerator sgm_source(config);
  SamplingGeometricMonitor sgm(f, T, sgm_source.max_step_norm(),
                               DefaultOptions());
  sgm.set_drift_norm_cap(sgm_source.max_drift_norm());
  const RunResult sgm_result = Simulate(&sgm_source, &sgm, 400);

  EXPECT_GT(gm_result.metrics.total_messages(),
            3 * sgm_result.metrics.total_messages());
}

// Requirement 3: the realized FN cycle rate stays below δ.
class SgmFnRateTest : public ::testing::TestWithParam<double> {};

TEST_P(SgmFnRateTest, FnRateBelowDelta) {
  const double delta = GetParam();
  SyntheticDriftConfig config;
  config.num_sites = 200;
  config.dim = 3;
  config.seed = 500 + static_cast<std::uint64_t>(delta * 100);
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  SamplingGeometricMonitor sgm(f, 2.6, source.max_step_norm(),
                               DefaultOptions(delta));
  const RunResult result = Simulate(&source, &sgm, 600);
  const double fn_rate = static_cast<double>(
                             result.metrics.false_negative_cycles()) /
                         static_cast<double>(result.cycles);
  EXPECT_LE(fn_rate, delta) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(Deltas, SgmFnRateTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3));

TEST(SgmTest, PartialResolutionCheaperThanFullSync) {
  // Count messages in a partially-resolved alarm: ~|K| + 2 ≪ N + 1.
  SyntheticDriftConfig config;
  config.num_sites = 400;
  config.dim = 3;
  config.seed = 21;
  SyntheticDriftGenerator source(config);
  L2Norm f(false);
  SamplingGeometricMonitor sgm(f, 2.6, source.max_step_norm(),
                               DefaultOptions());
  const RunResult result = Simulate(&source, &sgm, 400);
  if (result.metrics.partial_resolutions() > 0) {
    // Messages per alarm-handling event must average well below N + 1.
    const double events = static_cast<double>(
        result.metrics.partial_resolutions() + result.metrics.full_syncs());
    const double msgs_per_event =
        static_cast<double>(result.metrics.total_messages()) / events;
    EXPECT_LT(msgs_per_event, config.num_sites);
  }
}

TEST(SgmTest, MSgmMessagesComparableToSgm) {
  // Lemma 2(c)'s point: extra trials cannot grow constraints, so M-SGM's
  // communication stays in the same ballpark as SGM's.
  SyntheticDriftConfig config;
  config.num_sites = 250;
  config.dim = 3;
  config.seed = 33;
  L2Norm f(false);
  const double T = 2.7;

  SyntheticDriftGenerator s1(config), s2(config);
  SamplingGeometricMonitor sgm(f, T, s1.max_step_norm(), DefaultOptions());
  SamplingGeometricMonitor msgm(f, T, s2.max_step_norm(),
                                DefaultOptions(0.1, /*trials=*/0));
  const RunResult r1 = Simulate(&s1, &sgm, 300);
  const RunResult r2 = Simulate(&s2, &msgm, 300);
  EXPECT_LT(r2.metrics.total_messages(),
            4 * r1.metrics.total_messages() + 100);
}

TEST(BernoulliTest, WorseThanDriftWeightedSampling) {
  // Section 6.5: uniform sampling misses the big-drift sites and pays for it.
  SyntheticDriftConfig config;
  config.num_sites = 300;
  config.dim = 3;
  config.seed = 55;
  L2Norm f(false);
  const double T = 2.7;

  SyntheticDriftGenerator s1(config), s2(config);
  SamplingGeometricMonitor sgm(f, T, s1.max_step_norm(), DefaultOptions());
  auto bern = MakeBernoulliMonitor(f, T, s2.max_step_norm(), 0.1);
  const RunResult r_sgm = Simulate(&s1, &sgm, 400);
  const RunResult r_bern = Simulate(&s2, bern.get(), 400);
  EXPECT_GE(r_bern.metrics.total_messages(), r_sgm.metrics.total_messages());
}

TEST(SgmTest, DeterministicGivenSeeds) {
  SyntheticDriftConfig config;
  config.num_sites = 100;
  config.dim = 3;
  L2Norm f(false);
  long messages[2];
  for (int run = 0; run < 2; ++run) {
    SyntheticDriftGenerator source(config);
    SamplingGeometricMonitor sgm(f, 2.6, source.max_step_norm(),
                                 DefaultOptions());
    messages[run] = Simulate(&source, &sgm, 200).metrics.total_messages();
  }
  EXPECT_EQ(messages[0], messages[1]);
}

}  // namespace
}  // namespace sgm
