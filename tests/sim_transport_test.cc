// Unit tests of the seeded fault-injecting SimTransport: determinism,
// pass-through parity, drop/delay/duplication semantics, crash/recovery.

#include <vector>

#include <gtest/gtest.h>

#include "runtime/sim_transport.h"
#include "runtime/transport.h"

namespace sgm {
namespace {

RuntimeMessage SiteMessage(int from, std::size_t dim = 2) {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kStateReport;
  m.from = from;
  m.to = kCoordinatorId;
  m.payload = Vector(dim);
  return m;
}

RuntimeMessage Broadcast() {
  RuntimeMessage m;
  m.type = RuntimeMessage::Type::kNewEstimate;
  m.from = kCoordinatorId;
  m.to = kBroadcastId;
  m.payload = Vector{1.0, 2.0};
  return m;
}

/// Drains the inner bus into a vector of (type, from, to) triples.
std::vector<std::tuple<RuntimeMessage::Type, int, int>> Drain(
    InMemoryBus* bus) {
  std::vector<std::tuple<RuntimeMessage::Type, int, int>> out;
  while (!bus->empty()) {
    const RuntimeMessage m = bus->Pop();
    out.emplace_back(m.type, m.from, m.to);
  }
  return out;
}

TEST(InMemoryBusTest, BroadcastIsOneTransmission) {
  InMemoryBus bus;
  bus.Send(Broadcast());
  // The paper's cost model: a coordinator broadcast is a single
  // transmission no matter the fleet size.
  EXPECT_EQ(bus.messages_sent(), 1);
  EXPECT_EQ(bus.site_messages_sent(), 0);
}

TEST(InMemoryBusTest, SiteVersusCoordinatorSendsAreSeparated) {
  InMemoryBus bus;
  bus.Send(SiteMessage(0));
  bus.Send(SiteMessage(3));
  bus.Send(Broadcast());
  RuntimeMessage resolved;
  resolved.type = RuntimeMessage::Type::kResolved;
  resolved.from = kCoordinatorId;
  resolved.to = 1;
  resolved.scalar = 2.0;
  bus.Send(resolved);
  EXPECT_EQ(bus.messages_sent(), 4);
  EXPECT_EQ(bus.site_messages_sent(), 2);  // coordinator sends excluded
}

TEST(InMemoryBusTest, ZeroLengthPayloadStillPaysTheHeader) {
  InMemoryBus bus;
  RuntimeMessage probe;
  probe.type = RuntimeMessage::Type::kProbeRequest;
  probe.from = kCoordinatorId;
  probe.to = kBroadcastId;
  EXPECT_EQ(probe.PayloadDoubles(), 0u);
  bus.Send(probe);
  EXPECT_DOUBLE_EQ(bus.bytes_sent(), 16.0);

  // A payload-bearing message adds 8 bytes per double on top.
  bus.Send(SiteMessage(0, 3));  // StateReport: dim doubles
  EXPECT_DOUBLE_EQ(bus.bytes_sent(), 16.0 + (16.0 + 8.0 * 3.0));
}

TEST(InMemoryBusTest, FifoDeliveryOrder) {
  InMemoryBus bus;
  for (int i = 0; i < 4; ++i) bus.Send(SiteMessage(i));
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(bus.empty());
    EXPECT_EQ(bus.Pop().from, i);
  }
  EXPECT_TRUE(bus.empty());
}

TEST(SimTransportTest, FaultsOffIsExactPassThrough) {
  InMemoryBus plain, inner;
  SimTransportConfig config;  // all faults off
  SimTransport sim(&inner, config);

  for (int i = 0; i < 5; ++i) {
    plain.Send(SiteMessage(i));
    sim.Send(SiteMessage(i));
  }
  plain.Send(Broadcast());
  sim.Send(Broadcast());

  // Accounting parity with an InMemoryBus handling the same traffic.
  EXPECT_EQ(sim.messages_sent(), plain.messages_sent());
  EXPECT_EQ(sim.site_messages_sent(), plain.site_messages_sent());
  EXPECT_DOUBLE_EQ(sim.bytes_sent(), plain.bytes_sent());
  EXPECT_FALSE(sim.HasPending());
  // Identical delivery sequence (broadcast passes through unexpanded).
  EXPECT_EQ(Drain(&inner), Drain(&plain));
  EXPECT_EQ(sim.dropped_messages(), 0);
  EXPECT_EQ(sim.duplicated_messages(), 0);
}

TEST(SimTransportTest, SameSeedSameFaultSchedule) {
  for (int trial = 0; trial < 2; ++trial) {
    InMemoryBus inner_a, inner_b;
    SimTransportConfig config;
    config.seed = 777;
    config.drop_probability = 0.4;
    config.duplicate_probability = 0.2;
    config.max_delay_rounds = 3;
    config.num_sites = 8;
    SimTransport a(&inner_a, config), b(&inner_b, config);
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 8; ++i) {
        a.Send(SiteMessage(i));
        b.Send(SiteMessage(i));
      }
      a.AdvanceRound();
      b.AdvanceRound();
    }
    while (a.HasPending()) a.AdvanceRound();
    while (b.HasPending()) b.AdvanceRound();
    EXPECT_EQ(a.dropped_messages(), b.dropped_messages());
    EXPECT_EQ(a.duplicated_messages(), b.duplicated_messages());
    EXPECT_EQ(a.delayed_messages(), b.delayed_messages());
    EXPECT_EQ(Drain(&inner_a), Drain(&inner_b));
    EXPECT_GT(a.dropped_messages(), 0);    // faults actually fired
    EXPECT_GT(a.duplicated_messages(), 0);
    EXPECT_GT(a.delayed_messages(), 0);
  }
}

TEST(SimTransportTest, PerLinkStreamsAreIndependent) {
  // Site 1's fault outcomes must not depend on how much traffic site 0
  // generated — per-link streams never interleave.
  SimTransportConfig config;
  config.seed = 42;
  config.drop_probability = 0.5;
  config.num_sites = 4;

  InMemoryBus inner_a, inner_b;
  SimTransport a(&inner_a, config), b(&inner_b, config);
  // Run A: site 0 sends 10 messages interleaved with site 1's 10.
  for (int i = 0; i < 10; ++i) {
    a.Send(SiteMessage(0));
    a.Send(SiteMessage(1));
  }
  // Run B: site 1 sends its 10 alone.
  for (int i = 0; i < 10; ++i) b.Send(SiteMessage(1));

  int delivered_from_1_a = 0;
  for (const auto& [type, from, to] : Drain(&inner_a)) {
    if (from == 1) ++delivered_from_1_a;
  }
  EXPECT_EQ(static_cast<int>(Drain(&inner_b).size()), delivered_from_1_a);
}

TEST(SimTransportTest, DelayHoldsMessagesAcrossRounds) {
  InMemoryBus inner;
  SimTransportConfig config;
  config.seed = 9;
  config.max_delay_rounds = 4;
  config.num_sites = 2;
  SimTransport sim(&inner, config);

  int held = 0;
  for (int i = 0; i < 200; ++i) {
    sim.Send(SiteMessage(i % 2));
    held += sim.HasPending() ? 1 : 0;
  }
  EXPECT_GT(sim.delayed_messages(), 0);
  EXPECT_TRUE(sim.HasPending());
  const long immediate = static_cast<long>(Drain(&inner).size());
  EXPECT_EQ(immediate + sim.delayed_messages(), 200);

  // Bounded delay: at most max_delay_rounds advances flush everything.
  for (int r = 0; r < 4; ++r) sim.AdvanceRound();
  EXPECT_FALSE(sim.HasPending());
  EXPECT_EQ(static_cast<long>(Drain(&inner).size()), sim.delayed_messages());
}

TEST(SimTransportTest, DuplicationPaysSenderTwice) {
  InMemoryBus inner;
  SimTransportConfig config;
  config.seed = 3;
  config.duplicate_probability = 1.0;
  config.num_sites = 2;
  SimTransport sim(&inner, config);

  sim.Send(SiteMessage(0));
  EXPECT_EQ(sim.duplicated_messages(), 1);
  // Dual accounting: the duplicate is real traffic (transport totals) but
  // not protocol behavior (paper-comparable counters stay at one).
  EXPECT_EQ(sim.messages_sent(), 1);
  EXPECT_EQ(sim.site_messages_sent(), 1);
  EXPECT_EQ(sim.transport_messages_sent(), 2);
  EXPECT_GT(sim.transport_bytes_sent(), sim.bytes_sent());
  EXPECT_EQ(Drain(&inner).size(), 2u);     // delivered twice
}

// Golden accounting split (dual counters): retransmissions, duplicates and
// reliability control messages count toward transport totals only; the
// paper-comparable counters see exactly the original protocol traffic.
// These numbers pin the split — update knowingly.
TEST(SimTransportTest, GoldenDualAccountingSplit) {
  InMemoryBus inner;
  SimTransportConfig config;
  config.seed = 11;
  config.duplicate_probability = 1.0;  // every admitted message duplicates
  config.num_sites = 2;
  SimTransport sim(&inner, config);

  sim.Send(SiteMessage(0, 2));  // 16 + 16 B, duplicated
  RuntimeMessage retransmitted = SiteMessage(1, 2);
  retransmitted.retransmit = true;
  sim.Send(retransmitted);      // transport-only, duplicated
  RuntimeMessage ack;
  ack.type = RuntimeMessage::Type::kAck;
  ack.from = 0;
  ack.to = kCoordinatorId;
  sim.Send(ack);                // control: transport-only, duplicated

  // Paper-comparable: only the one original state report.
  EXPECT_EQ(sim.messages_sent(), 1);
  EXPECT_EQ(sim.site_messages_sent(), 1);
  EXPECT_DOUBLE_EQ(sim.bytes_sent(), 32.0);
  // Transport totals: 3 sends + 3 duplicates.
  EXPECT_EQ(sim.duplicated_messages(), 3);
  EXPECT_EQ(sim.transport_messages_sent(), 6);
  // 2 × (16+16) state reports + 2 × (16+16) retransmits + 2 × 16 acks.
  EXPECT_DOUBLE_EQ(sim.transport_bytes_sent(), 160.0);
}

TEST(SimTransportTest, BroadcastExpandsPerLinkButCountsOnce) {
  InMemoryBus inner;
  SimTransportConfig config;
  config.seed = 5;
  config.max_delay_rounds = 1;  // any nonzero fault enables expansion
  config.num_sites = 3;
  SimTransport sim(&inner, config);

  sim.Send(Broadcast());
  // One transmission in the accounting (the paper's broadcast cost model)...
  EXPECT_EQ(sim.messages_sent(), 1);
  EXPECT_EQ(sim.site_messages_sent(), 0);
  while (sim.HasPending()) sim.AdvanceRound();
  // ...but one per-link copy behind the scenes, addressed per site.
  const auto delivered = Drain(&inner);
  ASSERT_EQ(delivered.size(), 3u);
  for (int site = 0; site < 3; ++site) {
    bool found = false;
    for (const auto& [type, from, to] : delivered) found = found || to == site;
    EXPECT_TRUE(found) << "no copy for site " << site;
  }
}

TEST(SimTransportTest, CrashedSiteNeitherSendsNorReceives) {
  InMemoryBus inner;
  SimTransportConfig config;
  SimTransport sim(&inner, config);

  sim.CrashSite(1);
  EXPECT_TRUE(sim.IsCrashed(1));
  EXPECT_FALSE(sim.IsCrashed(0));

  sim.Send(SiteMessage(1));               // crashed sender: swallowed
  EXPECT_EQ(sim.messages_sent(), 0);

  RuntimeMessage to_crashed;
  to_crashed.type = RuntimeMessage::Type::kResolved;
  to_crashed.from = kCoordinatorId;
  to_crashed.to = 1;
  sim.Send(to_crashed);                   // unicast to crashed: dropped
  EXPECT_EQ(sim.messages_sent(), 1);      // the coordinator still paid
  EXPECT_EQ(sim.dropped_messages(), 1);
  EXPECT_TRUE(Drain(&inner).empty());

  sim.RecoverSite(1);
  sim.Send(SiteMessage(1));
  EXPECT_EQ(Drain(&inner).size(), 1u);
}

TEST(SimTransportTest, ZeroLengthPayloadAccountsHeaderOnly) {
  InMemoryBus inner;
  SimTransportConfig config;
  SimTransport sim(&inner, config);
  RuntimeMessage probe;
  probe.type = RuntimeMessage::Type::kProbeRequest;
  probe.from = kCoordinatorId;
  probe.to = kBroadcastId;
  sim.Send(probe);
  EXPECT_DOUBLE_EQ(sim.bytes_sent(), 16.0);
}

}  // namespace
}  // namespace sgm
