// Tests of the AMS sketch substrate and the sketch-based self-join monitor
// (the [12] application: sketch-based geometric monitoring).

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "sketch/ams_sketch.h"
#include "sketch/sketch_functions.h"

namespace sgm {
namespace {

double ExactF2(const std::map<std::uint64_t, double>& frequencies) {
  double sum = 0.0;
  for (const auto& [item, f] : frequencies) sum += f * f;
  return sum;
}

TEST(AmsSketchTest, LinearInUpdates) {
  AmsSketch a(5, 64, 77), b(5, 64, 77), combined(5, 64, 77);
  a.Update(1, 2.0);
  a.Update(9, -1.0);
  b.Update(1, 3.0);
  b.Update(4, 5.0);
  combined.Update(1, 5.0);
  combined.Update(9, -1.0);
  combined.Update(4, 5.0);
  EXPECT_EQ(a.counters() + b.counters(), combined.counters());
}

TEST(AmsSketchTest, SharedSeedsAgreeAcrossInstances) {
  AmsSketch a(4, 32, 123), b(4, 32, 123);
  a.Update(42);
  b.Update(42);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(AmsSketchTest, DifferentSeedsDiffer) {
  AmsSketch a(4, 32, 1), b(4, 32, 2);
  a.Update(42);
  b.Update(42);
  EXPECT_NE(a.counters(), b.counters());
}

TEST(AmsSketchTest, SelfJoinEstimateNearExact) {
  // Zipf-ish frequency vector; a 7x256 sketch should estimate F2 within
  // ~20 %.
  AmsSketch sketch(7, 256, 99);
  std::map<std::uint64_t, double> frequencies;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t item = rng.NextBounded(200) + 1;
    const std::uint64_t heavy = rng.NextBounded(10) + 1;
    const std::uint64_t chosen = rng.NextBernoulli(0.5) ? heavy : item;
    sketch.Update(chosen);
    frequencies[chosen] += 1.0;
  }
  const double exact = ExactF2(frequencies);
  EXPECT_NEAR(sketch.SelfJoinEstimate(), exact, 0.2 * exact);
}

TEST(AmsSketchTest, JoinEstimateNearExact) {
  AmsSketch a(7, 256, 321), b(7, 256, 321);
  std::map<std::uint64_t, double> fa, fb;
  Rng rng(6);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t item = rng.NextBounded(50);
    a.Update(item);
    fa[item] += 1.0;
    const std::uint64_t other = rng.NextBounded(50);
    b.Update(other);
    fb[other] += 1.0;
  }
  double exact = 0.0;
  for (const auto& [item, f] : fa) {
    auto it = fb.find(item);
    if (it != fb.end()) exact += f * it->second;
  }
  EXPECT_NEAR(a.JoinEstimate(b), exact, 0.25 * exact);
}

TEST(AmsSketchTest, CountersMatchStaticEstimator) {
  AmsSketch sketch(5, 64, 7);
  for (int i = 0; i < 100; ++i) sketch.Update(i % 13);
  EXPECT_DOUBLE_EQ(
      AmsSketch::SelfJoinFromCounters(sketch.counters(), 5, 64),
      sketch.SelfJoinEstimate());
}

// ------------------------------------------------------- SketchSelfJoin --

TEST(SketchSelfJoinTest, ValueMatchesSketchEstimate) {
  AmsSketch sketch(5, 32, 11);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 17);
  const SketchSelfJoin f(5, 32);
  EXPECT_DOUBLE_EQ(f.Value(sketch.counters()), sketch.SelfJoinEstimate());
}

TEST(SketchSelfJoinTest, Homogeneity) {
  const SketchSelfJoin f(3, 8);
  double degree = 0.0;
  EXPECT_TRUE(f.HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 2.0);
  Rng rng(8);
  Vector v(24);
  for (int j = 0; j < 24; ++j) v[j] = rng.NextDouble(-2.0, 2.0);
  EXPECT_NEAR(f.Value(v * 3.0), 9.0 * f.Value(v), 1e-9);
}

TEST(SketchSelfJoinTest, EnclosureCoversBallSamples) {
  const SketchSelfJoin f(3, 8);
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    Vector c(24);
    for (int j = 0; j < 24; ++j) c[j] = rng.NextDouble(-3.0, 3.0);
    const Ball ball(c, rng.NextDouble(0.1, 2.0));
    const Interval range = f.RangeOverBall(ball);
    for (int s = 0; s < 25; ++s) {
      Vector direction(24);
      for (int j = 0; j < 24; ++j) direction[j] = rng.NextGaussian();
      Vector p = c;
      p.Axpy(ball.radius() * rng.NextDouble() / direction.Norm(), direction);
      const double value = f.Value(p);
      EXPECT_GE(value, range.lo - 1e-7) << "trial " << trial;
      EXPECT_LE(value, range.hi + 1e-7) << "trial " << trial;
    }
  }
}

TEST(SketchSelfJoinTest, GradientIsValidSubgradientDirection) {
  const SketchSelfJoin f(3, 4);
  Rng rng(10);
  Vector v(12);
  for (int j = 0; j < 12; ++j) v[j] = rng.NextDouble(-2.0, 2.0);
  const Vector grad = f.Gradient(v);
  // Moving along the (sub)gradient must not decrease f locally.
  Vector moved = v;
  moved.Axpy(1e-4 / (grad.Norm() + 1e-12), grad);
  EXPECT_GE(f.Value(moved), f.Value(v) - 1e-9);
}

}  // namespace
}  // namespace sgm
