#include "data/sliding_window.h"

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(SlidingWindowTest, CountsAccumulate) {
  SlidingCountWindow w(5, 3);
  w.Push(0);
  w.Push(0);
  w.Push(2);
  EXPECT_EQ(w.counts(), (Vector{2.0, 0.0, 1.0}));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_FALSE(w.full());
}

TEST(SlidingWindowTest, EvictionAtCapacity) {
  SlidingCountWindow w(3, 2);
  w.Push(0);
  w.Push(0);
  w.Push(1);
  EXPECT_TRUE(w.full());
  w.Push(1);  // evicts the first 0
  EXPECT_EQ(w.counts(), (Vector{1.0, 2.0}));
  w.Push(1);  // evicts the second 0
  EXPECT_EQ(w.counts(), (Vector{0.0, 3.0}));
}

TEST(SlidingWindowTest, UncountedCategoryHoldsSlot) {
  SlidingCountWindow w(2, 2);
  w.Push(0);
  w.Push(2);  // placeholder: occupies a slot, counts nowhere
  EXPECT_EQ(w.counts(), (Vector{1.0, 0.0}));
  w.Push(2);  // evicts the 0
  EXPECT_EQ(w.counts(), (Vector{0.0, 0.0}));
  EXPECT_TRUE(w.full());
}

TEST(SlidingWindowTest, MatchesNaiveRecount) {
  const std::size_t window = 7, dim = 4;
  SlidingCountWindow w(window, dim);
  std::vector<std::size_t> history;
  std::uint64_t x = 88172645463325252ULL;
  for (int step = 0; step < 500; ++step) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t category = x % (dim + 1);
    w.Push(category);
    history.push_back(category);

    Vector expected(dim);
    const std::size_t start =
        history.size() > window ? history.size() - window : 0;
    for (std::size_t k = start; k < history.size(); ++k) {
      if (history[k] < dim) expected[history[k]] += 1.0;
    }
    ASSERT_EQ(w.counts(), expected) << "step " << step;
  }
}

TEST(SlidingWindowTest, CountsSumBoundedByWindow) {
  SlidingCountWindow w(10, 3);
  for (int i = 0; i < 100; ++i) w.Push(i % 3);
  EXPECT_LE(w.counts().Sum(), 10.0);
}

}  // namespace
}  // namespace sgm
