// Tests of the socket runtime's byte layer (src/runtime/socket_transport):
// length-prefixed framing over arbitrary TCP re-segmentation, CRC rejection
// of garbage frames before any parse reaches the protocol, oversized-prefix
// poisoning, short-write handling, real loopback delivery, and peer loss /
// reconnect accounting.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "runtime/serialization.h"
#include "runtime/socket_transport.h"

namespace sgm {
namespace {

RuntimeMessage MakeReport(int from, double scalar, std::size_t dim) {
  RuntimeMessage message;
  message.type = RuntimeMessage::Type::kDriftReport;
  message.from = from;
  message.to = kCoordinatorId;
  message.epoch = 3;
  message.scalar = scalar;
  message.payload = Vector(dim, 0.25);
  return message;
}

RuntimeMessage MakeEstimate(int to, double scalar) {
  RuntimeMessage message;
  message.type = RuntimeMessage::Type::kNewEstimate;
  message.from = kCoordinatorId;
  message.to = to;
  message.epoch = 1;
  message.scalar = scalar;
  message.payload = Vector{1.0, 2.0};
  return message;
}

// Encodes `message` the way SocketTransport frames it: u32 LE length prefix
// followed by the wire-v4 frame.
std::vector<std::uint8_t> Framed(const RuntimeMessage& message) {
  const std::vector<std::uint8_t> frame = EncodeMessage(message);
  std::vector<std::uint8_t> out;
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  out.push_back(static_cast<std::uint8_t>(n & 0xFF));
  out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((n >> 24) & 0xFF));
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

TEST(FrameReaderTest, ReassemblesByteAtATimeDelivery) {
  const RuntimeMessage sent = MakeReport(2, 1.5, 6);
  const std::vector<std::uint8_t> stream = Framed(sent);

  FrameReader reader;
  std::vector<std::uint8_t> frame;
  // Worst-case re-segmentation: one byte per recv(). The reader must report
  // kNeedMore at every prefix of the stream and yield exactly at the end.
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    reader.Append(&stream[i], 1);
    EXPECT_EQ(reader.NextFrame(&frame), FrameReader::Result::kNeedMore)
        << "frame closed early after byte " << i;
  }
  reader.Append(&stream[stream.size() - 1], 1);
  ASSERT_EQ(reader.NextFrame(&frame), FrameReader::Result::kFrame);

  const Result<RuntimeMessage> decoded = DecodeMessage(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().from, sent.from);
  EXPECT_EQ(decoded.ValueOrDie().scalar, sent.scalar);
  EXPECT_EQ(decoded.ValueOrDie().payload, sent.payload);
  EXPECT_EQ(reader.NextFrame(&frame), FrameReader::Result::kNeedMore);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReaderTest, SplitsCoalescedFrames) {
  // The opposite re-segmentation: three frames land in one recv().
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    const std::vector<std::uint8_t> framed = Framed(MakeReport(i, i + 0.5, 4));
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameReader reader;
  reader.Append(stream.data(), stream.size());

  std::vector<RuntimeMessage> out;
  FrameStats stats;
  ASSERT_TRUE(DrainDecodedFrames(&reader, &out, &stats));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(stats.frames, 3);
  EXPECT_EQ(stats.corrupt, 0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i].from, i);
}

TEST(FrameReaderTest, OversizedPrefixPoisonsPermanently) {
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &huge, sizeof(huge));

  FrameReader reader;
  reader.Append(prefix, sizeof(prefix));
  std::vector<std::uint8_t> frame;
  EXPECT_EQ(reader.NextFrame(&frame), FrameReader::Result::kOversized);
  EXPECT_TRUE(reader.poisoned());

  // Even a subsequent well-formed frame must not resurrect the stream: a
  // hostile or corrupted length prefix means framing sync is gone for good.
  const std::vector<std::uint8_t> good = Framed(MakeReport(1, 1.0, 4));
  reader.Append(good.data(), good.size());
  EXPECT_EQ(reader.NextFrame(&frame), FrameReader::Result::kOversized);
  std::vector<RuntimeMessage> out;
  FrameStats stats;
  EXPECT_FALSE(DrainDecodedFrames(&reader, &out, &stats));
  EXPECT_EQ(stats.oversized, 1);
  EXPECT_TRUE(out.empty());
}

TEST(FrameReaderTest, CrcRejectsGarbageFrameAndStreamStaysInSync) {
  // Middle frame of three gets one payload byte flipped. The CRC32C trailer
  // must reject it before any field reaches the protocol, and the length
  // prefix must carry the reader straight to the third (clean) frame.
  const RuntimeMessage a = MakeReport(0, 1.0, 8);
  const RuntimeMessage b = MakeReport(1, 2.0, 8);
  const RuntimeMessage c = MakeReport(2, 3.0, 8);
  std::vector<std::uint8_t> stream = Framed(a);
  std::vector<std::uint8_t> framed_b = Framed(b);
  framed_b[framed_b.size() / 2] ^= 0x40;
  stream.insert(stream.end(), framed_b.begin(), framed_b.end());
  const std::vector<std::uint8_t> framed_c = Framed(c);
  stream.insert(stream.end(), framed_c.begin(), framed_c.end());

  FrameReader reader;
  reader.Append(stream.data(), stream.size());
  std::vector<RuntimeMessage> out;
  FrameStats stats;
  ASSERT_TRUE(DrainDecodedFrames(&reader, &out, &stats));
  EXPECT_EQ(stats.corrupt, 1);
  EXPECT_EQ(stats.frames, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].from, 0);
  EXPECT_EQ(out[1].from, 2);
  EXPECT_FALSE(reader.poisoned());
}

// Reads frames from `fd` until `want` messages decoded (or EOF/error).
std::vector<RuntimeMessage> ReadMessages(int fd, std::size_t want) {
  FrameReader reader;
  std::vector<RuntimeMessage> out;
  std::uint8_t buffer[65536];
  while (out.size() < want) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reader.Append(buffer, static_cast<std::size_t>(n));
    FrameStats stats;
    if (!DrainDecodedFrames(&reader, &out, &stats)) break;
  }
  return out;
}

// One accepted loopback connection pair: `client` is the connecting side,
// `server` the accepted side.
struct LoopbackPair {
  int listen_fd = -1;
  int client = -1;
  int server = -1;

  bool Open() {
    int port = 0;
    listen_fd = ListenTcpLoopback(0, &port);
    if (listen_fd < 0) return false;
    client = ConnectTcpLoopback(port, 2000);
    if (client < 0) return false;
    server = ::accept(listen_fd, nullptr, nullptr);
    return server >= 0;
  }

  ~LoopbackPair() {
    if (client >= 0) ::close(client);
    if (server >= 0) ::close(server);
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

TEST(SocketTransportTest, DeliversOverRealLoopbackWithPaperAccounting) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());

  SocketTransport transport;
  transport.RegisterPeer(kCoordinatorId, pair.client);
  const RuntimeMessage sent = MakeReport(1, 4.5, 16);
  transport.Send(sent);

  const std::vector<RuntimeMessage> got = ReadMessages(pair.server, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, sent.type);
  EXPECT_EQ(got[0].scalar, sent.scalar);
  EXPECT_EQ(got[0].payload, sent.payload);

  EXPECT_EQ(transport.messages_sent(), 1);
  EXPECT_EQ(transport.site_messages_sent(), 1);
  EXPECT_EQ(transport.bytes_sent(), WireBytes(sent));
  EXPECT_EQ(transport.transport_messages_sent(), 1);
  // Actual bytes: encoded frame plus the 4-byte length prefix.
  EXPECT_EQ(transport.transport_bytes_sent(),
            static_cast<double>(EncodeMessage(sent).size() + 4));
  EXPECT_EQ(transport.data_frames_sent(), 1);
  EXPECT_EQ(transport.send_failures(), 0);
}

TEST(SocketTransportTest, BroadcastWritesEveryPeerButCountsOnce) {
  LoopbackPair a;
  LoopbackPair b;
  ASSERT_TRUE(a.Open());
  ASSERT_TRUE(b.Open());

  SocketTransport transport;
  transport.RegisterPeer(0, a.client);
  transport.RegisterPeer(1, b.client);

  RuntimeMessage estimate;
  estimate.type = RuntimeMessage::Type::kNewEstimate;
  estimate.from = kCoordinatorId;
  estimate.to = kBroadcastId;
  estimate.payload = Vector{1.0, 2.0};
  transport.Send(estimate);

  EXPECT_EQ(ReadMessages(a.server, 1).size(), 1u);
  EXPECT_EQ(ReadMessages(b.server, 1).size(), 1u);
  // Paper cost model: a broadcast is one message; the transport totals see
  // the two physical frames.
  EXPECT_EQ(transport.messages_sent(), 1);
  EXPECT_EQ(transport.site_messages_sent(), 0);
  EXPECT_EQ(transport.bytes_sent(), WireBytes(estimate));
  EXPECT_EQ(transport.transport_messages_sent(), 2);
}

TEST(SocketTransportTest, SessionControlAndAcksStayOutOfPaperCounters) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  SocketTransport transport;
  transport.RegisterPeer(kCoordinatorId, pair.client);

  RuntimeMessage hello;
  hello.type = RuntimeMessage::Type::kSiteHello;
  hello.from = 3;
  hello.to = kCoordinatorId;
  transport.Send(hello);

  RuntimeMessage ack;
  ack.type = RuntimeMessage::Type::kAck;
  ack.from = 3;
  ack.to = kCoordinatorId;
  ack.seq = 7;
  transport.Send(ack);

  EXPECT_EQ(ReadMessages(pair.server, 2).size(), 2u);
  EXPECT_EQ(transport.messages_sent(), 0);
  EXPECT_EQ(transport.transport_messages_sent(), 2);
  // Neither can induce protocol traffic from the receiver: the barrier
  // loop's quiescence check must not see them as data.
  EXPECT_EQ(transport.data_frames_sent(), 0);
}

TEST(SocketTransportTest, WriteAllSurvivesShortWrites) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  // Shrink the send buffer so one big payload cannot fit in a single
  // write() — WriteAll must loop over the partial writes while a reader
  // drains the other end.
  int small = 4096;
  ASSERT_EQ(::setsockopt(pair.client, SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  SocketTransport transport;
  transport.RegisterPeer(kCoordinatorId, pair.client);
  const RuntimeMessage big = MakeReport(0, 1.0, /*dim=*/100000);  // ~800 KiB

  std::vector<RuntimeMessage> got;
  std::thread reader([&] { got = ReadMessages(pair.server, 1); });
  transport.Send(big);
  reader.join();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, big.payload);
  EXPECT_EQ(transport.send_failures(), 0);
}

TEST(SocketTransportTest, AsyncWriterCountsShortWritesOnBigFrames) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  // A small send buffer forces the writer thread's MSG_DONTWAIT sends to
  // stop mid-frame while a reader drains the far end — each such pause is
  // a short-write completion the counter must record.
  int small = 4096;
  ASSERT_EQ(::setsockopt(pair.client, SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  SocketTransport transport;
  transport.EnableAsyncWriter(/*max_queue_frames=*/8);
  transport.RegisterPeer(0, pair.client);
  RuntimeMessage big = MakeEstimate(0, 1.0);
  big.payload = Vector(100000, 0.5);  // ~800 KiB frame

  std::vector<RuntimeMessage> got;
  std::thread reader([&] { got = ReadMessages(pair.server, 1); });
  transport.Send(big);
  reader.join();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, big.payload);
  EXPECT_GE(transport.short_writes(), 1);
  EXPECT_EQ(transport.send_failures(), 0);
  EXPECT_EQ(transport.send_queue_drops(), 0);
}

TEST(SocketTransportTest, PeerLossCountsFailureAndReconnectRecovers) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  SocketTransport transport;
  transport.RegisterPeer(kCoordinatorId, pair.client);
  ASSERT_TRUE(transport.HasPeer(kCoordinatorId));

  // Kill the receiving end. The first send after the close may still land
  // in the kernel buffer (and draws the RST); a follow-up write must fail
  // with EPIPE, count a send failure, and drop the peer.
  ::close(pair.server);
  pair.server = -1;
  const RuntimeMessage report = MakeReport(0, 1.0, 4);
  for (int i = 0; i < 50 && transport.send_failures() == 0; ++i) {
    transport.Send(report);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(transport.send_failures(), 1);
  EXPECT_FALSE(transport.HasPeer(kCoordinatorId));

  // With the peer gone every further unicast counts as a failure (the
  // frame never reached the wire) but stays a paper-family send: the
  // reliability layer above owns retries and the dead-link verdict.
  const long failures = transport.send_failures();
  const long paper = transport.messages_sent();
  transport.Send(report);
  EXPECT_EQ(transport.send_failures(), failures + 1);
  EXPECT_EQ(transport.messages_sent(), paper + 1);

  // Reconnect: a fresh connection re-registered under the same peer id
  // carries traffic again.
  ::close(pair.client);
  pair.client = -1;
  LoopbackPair fresh;
  ASSERT_TRUE(fresh.Open());
  transport.RegisterPeer(kCoordinatorId, fresh.client);
  transport.Send(report);
  const std::vector<RuntimeMessage> got = ReadMessages(fresh.server, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].scalar, report.scalar);
}

TEST(FrameReaderTest, ResetDiscardsBufferedPartialFrame) {
  const RuntimeMessage first = MakeReport(1, 2.5, 8);
  const RuntimeMessage second = MakeReport(2, 7.5, 8);
  const std::vector<std::uint8_t> stream = Framed(first);

  FrameReader reader;
  // Half a frame arrives, then the connection dies. The surviving bytes
  // must not splice with anything a fresh session delivers.
  reader.Append(stream.data(), stream.size() / 2);
  std::vector<std::uint8_t> frame;
  ASSERT_EQ(reader.NextFrame(&frame), FrameReader::Result::kNeedMore);
  reader.Reset();

  const std::vector<std::uint8_t> fresh = Framed(second);
  reader.Append(fresh.data(), fresh.size());
  std::vector<RuntimeMessage> out;
  FrameStats stats;
  ASSERT_TRUE(DrainDecodedFrames(&reader, &out, &stats));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, second.from);
  EXPECT_EQ(out[0].scalar, second.scalar);
  // A splice would have produced CRC garbage; a clean reset produces none.
  EXPECT_EQ(stats.corrupt, 0L);
  EXPECT_EQ(stats.frames, 1L);
}

TEST(FrameReaderTest, ResetClearsOversizedPrefixPoison) {
  FrameReader reader;
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  reader.Append(huge, sizeof(huge));
  std::vector<std::uint8_t> frame;
  ASSERT_EQ(reader.NextFrame(&frame), FrameReader::Result::kOversized);
  // Poison is permanent within a session — but Reset starts a new session
  // on a new connection, where the old garbage means nothing.
  reader.Reset();
  const RuntimeMessage sent = MakeReport(0, 1.0, 4);
  const std::vector<std::uint8_t> stream = Framed(sent);
  reader.Append(stream.data(), stream.size());
  ASSERT_EQ(reader.NextFrame(&frame), FrameReader::Result::kFrame);
}

TEST(SocketTransportTest, MidFrameDisconnectDoesNotSpliceAcrossReconnect) {
  // The peer dies halfway through a length-prefixed frame: the receiver
  // holds a dangling prefix plus partial body. After reconnect-with-Reset,
  // the next session's frames decode cleanly with zero CRC casualties.
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  const RuntimeMessage doomed = MakeReport(1, 9.0, 64);
  const std::vector<std::uint8_t> stream = Framed(doomed);
  ASSERT_EQ(::send(pair.client, stream.data(), stream.size() / 2, 0),
            static_cast<ssize_t>(stream.size() / 2));
  ::close(pair.client);
  pair.client = -1;

  FrameReader reader;
  std::array<std::uint8_t, 4096> buffer;
  for (;;) {
    const ssize_t n =
        ::recv(pair.server, buffer.data(), buffer.size(), 0);
    if (n <= 0) break;  // EOF mid-frame
    reader.Append(buffer.data(), static_cast<std::size_t>(n));
  }
  std::vector<RuntimeMessage> out;
  FrameStats stats;
  ASSERT_TRUE(DrainDecodedFrames(&reader, &out, &stats));
  EXPECT_TRUE(out.empty()) << "half a frame must not decode";
  EXPECT_EQ(stats.corrupt, 0L);

  // Reconnect: fresh connection, same reader object, state discarded.
  reader.Reset();
  LoopbackPair fresh;
  ASSERT_TRUE(fresh.Open());
  SocketTransport transport;
  transport.RegisterPeer(kCoordinatorId, fresh.client);
  const RuntimeMessage survivor = MakeReport(2, 3.0, 16);
  transport.Send(survivor);
  ::shutdown(fresh.client, SHUT_WR);
  for (;;) {
    const ssize_t n =
        ::recv(fresh.server, buffer.data(), buffer.size(), 0);
    if (n <= 0) break;
    reader.Append(buffer.data(), static_cast<std::size_t>(n));
  }
  out.clear();
  ASSERT_TRUE(DrainDecodedFrames(&reader, &out, &stats));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, survivor.from);
  EXPECT_EQ(out[0].payload, survivor.payload);
  EXPECT_EQ(stats.corrupt, 0L);
}

TEST(SocketTransportTest, SenderDiesAfterPartialWriteReceiverStaysClean) {
  // The sending process is killed mid-write of a large frame (simulated by
  // closing after a truncated raw write). The receiver must treat the
  // truncated tail as silence — never as a decodable or corrupt frame.
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  const RuntimeMessage big = MakeReport(3, 5.0, 4096);
  const std::vector<std::uint8_t> stream = Framed(big);
  // Write everything except the last byte, then die.
  ASSERT_EQ(::send(pair.client, stream.data(), stream.size() - 1, 0),
            static_cast<ssize_t>(stream.size() - 1));
  ::close(pair.client);
  pair.client = -1;

  FrameReader reader;
  std::array<std::uint8_t, 65536> buffer;
  for (;;) {
    const ssize_t n =
        ::recv(pair.server, buffer.data(), buffer.size(), 0);
    if (n <= 0) break;
    reader.Append(buffer.data(), static_cast<std::size_t>(n));
  }
  std::vector<RuntimeMessage> out;
  FrameStats stats;
  ASSERT_TRUE(DrainDecodedFrames(&reader, &out, &stats));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.frames, 0L);
  EXPECT_EQ(stats.corrupt, 0L);
}

TEST(SocketRetryTest, BackoffDoublesCapsAndJittersDeterministically) {
  SocketRetryConfig retry;
  retry.base_backoff_ms = 4;
  retry.max_backoff_ms = 64;
  retry.jitter_seed = 99;
  std::uint64_t state_a = retry.jitter_seed;
  std::uint64_t state_b = retry.jitter_seed;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const long a = SocketRetryDelayMs(retry, attempt, &state_a);
    const long b = SocketRetryDelayMs(retry, attempt, &state_b);
    EXPECT_EQ(a, b) << "same seed, same schedule";
    EXPECT_LE(a, 64L);
    EXPECT_GE(a, 1L);
  }
  // The exponential phase grows until the cap: attempt 6 spans (16, 32].
  std::uint64_t state = retry.jitter_seed;
  for (int attempt = 1; attempt < 4; ++attempt) {
    SocketRetryDelayMs(retry, attempt, &state);
  }
  const long mid = SocketRetryDelayMs(retry, 4, &state);
  EXPECT_GE(mid, 16L);
  EXPECT_LE(mid, 32L);
}

TEST(SocketRetryTest, ConnectRetriesUntilListenerAppearsAndGivesUp) {
  // Reserve a port, but only start listening after a delay: the first
  // dial attempts must fail and the retry loop must pick the listener up
  // once it exists.
  int port = 0;
  {
    const int probe = ListenTcpLoopback(0, &port);
    ASSERT_GE(probe, 0);
    ::close(probe);  // port now free (SO_REUSEADDR rebinds it below)
  }
  SocketRetryConfig retry;
  retry.max_attempts = 100;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 10;
  std::uint64_t state = 7;

  std::atomic<int> listen_fd{-1};
  std::thread late_listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    int bound = 0;
    listen_fd.store(ListenTcpLoopback(port, &bound));
  });
  const int fd = ConnectTcpLoopbackWithRetry(port, retry, &state);
  late_listener.join();
  EXPECT_GE(fd, 0) << "retry loop never found the late listener";
  if (fd >= 0) ::close(fd);
  if (listen_fd.load() >= 0) ::close(listen_fd.load());

  // Give-up: nobody listens on the (re-freed) port, tiny budget.
  SocketRetryConfig hopeless;
  hopeless.max_attempts = 3;
  hopeless.base_backoff_ms = 1;
  hopeless.max_backoff_ms = 2;
  std::uint64_t hopeless_state = 3;
  EXPECT_LT(ConnectTcpLoopbackWithRetry(port, hopeless, &hopeless_state), 0);
}

TEST(SocketTransportTest, AsyncWriterPreservesPerPeerFifoOrder) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());

  SocketTransport transport;
  transport.EnableAsyncWriter(/*max_queue_frames=*/64);
  transport.RegisterPeer(0, pair.client);

  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    transport.Send(MakeEstimate(0, static_cast<double>(i)));
  }
  // Paper accounting moves to enqueue time: all 20 logical sends are
  // visible immediately, whatever the writer thread has drained so far.
  EXPECT_EQ(transport.messages_sent(), kFrames);
  EXPECT_EQ(transport.data_frames_sent(), kFrames);

  const std::vector<RuntimeMessage> got = ReadMessages(pair.server, kFrames);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i].scalar, static_cast<double>(i)) << "frame " << i;
  }
  EXPECT_EQ(transport.send_queue_drops(), 0);
  EXPECT_EQ(transport.send_failures(), 0);
}

TEST(SocketTransportTest, AsyncWriterStopFlushesQueuedFrames) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());

  SocketTransport transport;
  transport.EnableAsyncWriter(/*max_queue_frames=*/64);
  transport.RegisterPeer(0, pair.client);
  constexpr int kFrames = 10;
  for (int i = 0; i < kFrames; ++i) {
    transport.Send(MakeEstimate(0, static_cast<double>(i)));
  }
  // StopAsyncWriter's flush deadline must get every queued frame onto the
  // wire before the writer thread is joined.
  transport.StopAsyncWriter(/*flush_deadline_ms=*/2000);
  EXPECT_EQ(transport.send_queue_depth(), 0);
  const std::vector<RuntimeMessage> got = ReadMessages(pair.server, kFrames);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  EXPECT_EQ(got.back().scalar, static_cast<double>(kFrames - 1));
}

TEST(SocketTransportTest, AsyncWriterOverflowDropsStalledPeer) {
  LoopbackPair pair;
  ASSERT_TRUE(pair.Open());
  // Simulate a frozen peer: shrink the kernel buffers and pre-fill the
  // client socket until it EAGAINs, with nobody reading the server end.
  int small = 4096;
  ASSERT_EQ(::setsockopt(pair.client, SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  ASSERT_EQ(::setsockopt(pair.server, SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);
  std::vector<std::uint8_t> junk(65536, 0xAB);
  while (::send(pair.client, junk.data(), junk.size(),
                MSG_DONTWAIT | MSG_NOSIGNAL) > 0) {
  }

  SocketTransport transport;
  transport.EnableAsyncWriter(/*max_queue_frames=*/2);
  transport.RegisterPeer(0, pair.client);
  ASSERT_TRUE(transport.HasPeer(0));

  // Two frames park in the bounded queue (the writer's MSG_DONTWAIT sees
  // EAGAIN forever); the third overflows, which must drop the peer rather
  // than block the sender or grow the queue without bound.
  transport.Send(MakeEstimate(0, 1.0));
  transport.Send(MakeEstimate(0, 2.0));
  transport.Send(MakeEstimate(0, 3.0));
  EXPECT_EQ(transport.send_queue_drops(), 1);
  EXPECT_FALSE(transport.HasPeer(0));
  EXPECT_EQ(transport.send_queue_depth(), 0);  // purged with the peer
}

}  // namespace
}  // namespace sgm
