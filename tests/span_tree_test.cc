// Causal sync-cycle spans: every cascade the coordinator runs must leave a
// complete, orphan-free span tree in the trace — a root minted per cascade
// (sync_cycle_begin) or rejoin grant, phase spans (probe / full sync /
// broadcast) parented on the root, and transport msg_send events that
// attribute every span-carrying message to its phase. Reconstructed here
// exactly the way tools/trace_inspect --spans does it, over a hostile
// fault profile so retransmissions, crashes and rejoins are all in play.

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "sim/stress.h"

namespace sgm {
namespace {

const TraceArg* FindArg(const TraceEvent& event, const char* key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) return &arg;
  }
  return nullptr;
}

std::int64_t IntArg(const TraceEvent& event, const char* key) {
  const TraceArg* arg = FindArg(event, key);
  return arg != nullptr && arg->kind == TraceArg::Kind::kInt ? arg->int_value
                                                             : 0;
}

class SpanTreeTest : public ::testing::Test {
 protected:
  /// Runs a hostile runtime leg and indexes its span graph.
  void RunAndIndex(std::uint64_t seed) {
    StressConfig config;
    config.seed = seed;
    config.protocol = StressProtocol::kSgm;
    config.cycles = 150;
    config.drop_probability = 0.30;
    config.duplicate_probability = 0.10;
    config.max_delay_rounds = 3;
    config.crash_probability = 0.05;
    config.telemetry = &telemetry_;
    const StressReport report = RunRuntimeStress(config);
    ASSERT_TRUE(report.ok()) << report.Summary();

    events_ = telemetry_.trace.events();
    for (const TraceEvent& event : events_) {
      const std::int64_t span = IntArg(event, "span");
      if (span == 0) continue;
      spans_.insert(span);
      const std::int64_t parent = IntArg(event, "parent");
      if (parent != 0) parent_of_[span] = parent;
      if (event.name == "sync_cycle_begin") cascade_roots_.insert(span);
      if (event.name == "rejoin_grant") grant_roots_.insert(span);
    }
  }

  Telemetry telemetry_;
  std::vector<TraceEvent> events_;
  std::set<std::int64_t> spans_;
  std::set<std::int64_t> cascade_roots_;
  std::set<std::int64_t> grant_roots_;
  std::map<std::int64_t, std::int64_t> parent_of_;
};

TEST_F(SpanTreeTest, EveryCycleSpanTreeIsCompleteWithNoOrphans) {
  RunAndIndex(/*seed=*/7);
  ASSERT_FALSE(cascade_roots_.empty()) << "run produced no sync cascades";

  // No orphans: every parent referenced anywhere is itself a known span.
  for (const auto& [span, parent] : parent_of_) {
    EXPECT_TRUE(spans_.count(parent))
        << "span " << span << " references unknown parent " << parent;
  }

  // Every span resolves to a declared root — a sync cascade or a rejoin
  // grant — in a bounded number of parent hops (the tree has no cycles).
  for (const std::int64_t span : spans_) {
    std::int64_t at = span;
    int hops = 0;
    while (parent_of_.count(at) != 0 && hops < 10) {
      at = parent_of_.at(at);
      ++hops;
    }
    EXPECT_LT(hops, 10) << "parent chain of span " << span << " too deep";
    EXPECT_TRUE(cascade_roots_.count(at) || grant_roots_.count(at))
        << "span " << span << " resolves to undeclared root " << at;
  }

  // Roots really are roots.
  for (const std::int64_t root : cascade_roots_) {
    EXPECT_EQ(parent_of_.count(root), 0u)
        << "cascade root " << root << " has a parent";
  }
  for (const std::int64_t root : grant_roots_) {
    EXPECT_EQ(parent_of_.count(root), 0u)
        << "rejoin-grant root " << root << " has a parent";
  }
}

TEST_F(SpanTreeTest, PhaseEventsParentOnTheirCascadeRoot) {
  RunAndIndex(/*seed=*/7);
  long probes = 0;
  long full_syncs = 0;
  for (const TraceEvent& event : events_) {
    if (event.name != "probe_begin" && event.name != "full_sync_begin") {
      continue;
    }
    const std::int64_t span = IntArg(event, "span");
    const std::int64_t parent = IntArg(event, "parent");
    ASSERT_NE(span, 0) << event.name << " without a span";
    ASSERT_NE(parent, 0) << event.name << " without a parent";
    EXPECT_TRUE(cascade_roots_.count(parent))
        << event.name << " parent " << parent << " is not a cascade root";
    (event.name == "probe_begin" ? probes : full_syncs) += 1;
  }
  EXPECT_GT(probes, 0);
  EXPECT_GT(full_syncs, 0);
}

TEST_F(SpanTreeTest, EscalationKeepsProbeAndFullSyncUnderOneRoot) {
  RunAndIndex(/*seed=*/7);
  // A probe that escalates produces probe_begin then full_sync_begin with
  // the same parent — the cascade root survives the escalation instead of
  // minting a second tree.
  std::map<std::int64_t, std::set<std::string>> phases_by_root;
  for (const TraceEvent& event : events_) {
    if (event.name != "probe_begin" && event.name != "full_sync_begin") {
      continue;
    }
    phases_by_root[IntArg(event, "parent")].insert(event.name);
  }
  long escalated = 0;
  for (const auto& [root, phases] : phases_by_root) {
    if (phases.count("probe_begin") && phases.count("full_sync_begin")) {
      ++escalated;
    }
  }
  EXPECT_GT(escalated, 0)
      << "hostile profile never escalated a probe to a full sync";
}

TEST_F(SpanTreeTest, SitesEchoRequestSpansInsteadOfMinting) {
  RunAndIndex(/*seed=*/7);
  // Site-originated span traffic (drift/state reports, actor >= 0) must
  // reuse coordinator-minted span ids: every site msg_send span already
  // appears in a coordinator phase event. Sites never mint.
  std::set<std::int64_t> coordinator_spans;
  for (const TraceEvent& event : events_) {
    if (event.actor == -1) {
      const std::int64_t span = IntArg(event, "span");
      if (span != 0) coordinator_spans.insert(span);
    }
  }
  long site_span_sends = 0;
  for (const TraceEvent& event : events_) {
    if (event.name != "msg_send" || event.actor < 0) continue;
    const std::int64_t span = IntArg(event, "span");
    if (span == 0) continue;
    ++site_span_sends;
    EXPECT_TRUE(coordinator_spans.count(span))
        << "site " << event.actor << " sent span " << span
        << " that the coordinator never minted";
  }
  EXPECT_GT(site_span_sends, 0);
}

TEST_F(SpanTreeTest, SpanMessageCostsAreAttributed) {
  RunAndIndex(/*seed=*/7);
  // Every msg_send carries a positive byte cost, so per-span cost
  // attribution (trace_inspect --spans) never divides by silence.
  long sends = 0;
  for (const TraceEvent& event : events_) {
    if (event.name != "msg_send") continue;
    ++sends;
    EXPECT_GT(IntArg(event, "bytes"), 0);
    EXPECT_NE(IntArg(event, "span"), 0);
  }
  EXPECT_GT(sends, 0);
}

}  // namespace
}  // namespace sgm
