#include "core/status.h"

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad delta");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SGM_RETURN_NOT_OK(FailWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sgm
