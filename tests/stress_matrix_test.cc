// The full deterministic-simulation stress matrix (ctest -L slow): every
// protocol × function × fault profile, across many master seeds, with zero
// tolerated invariant violations. Any failure message contains the one
// command that replays the offending leg.

#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "sim/stress.h"

namespace sgm {
namespace {

// ≥ 50 distinct master seeds; each expands to the full suite (8 sim legs,
// 8 runtime fault profiles — up to 30% drop with duplication, delay and
// crash/recovery — and 1 parity leg).
constexpr int kMasterSeeds = 50;

TEST(StressMatrixTest, FiftySeedsZeroViolations) {
  int legs = 0;
  std::string failures;
  for (int i = 0; i < kMasterSeeds; ++i) {
    const std::uint64_t master = DeriveSeed(0xD57ED57Eu, i);
    for (const StressReport& report : RunStressSuite(master)) {
      ++legs;
      if (!report.ok()) failures += report.Summary();
    }
  }
  EXPECT_GE(legs, kMasterSeeds * 15);
  EXPECT_TRUE(failures.empty()) << failures;
}

}  // namespace
}  // namespace sgm
