// Fast deterministic-simulation stress checks (ctest -L stress): one leg of
// each kind, replay determinism, and the forced-violation demo proving a
// broken invariant prints a seed that replays.

#include <cstdint>

#include <gtest/gtest.h>

#include "sim/stress.h"

namespace sgm {
namespace {

bool SameViolations(const StressReport& a, const StressReport& b) {
  if (a.violations.size() != b.violations.size()) return false;
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    if (a.violations[i].invariant != b.violations[i].invariant ||
        a.violations[i].cycle != b.violations[i].cycle ||
        a.violations[i].details != b.violations[i].details) {
      return false;
    }
  }
  return true;
}

TEST(StressSmokeTest, SimLegHoldsForEveryProtocol) {
  for (StressProtocol protocol :
       {StressProtocol::kGm, StressProtocol::kBgm, StressProtocol::kSgm,
        StressProtocol::kCvsgm}) {
    for (StressFunction function :
         {StressFunction::kL2Norm, StressFunction::kLinfDistance}) {
      StressConfig config;
      config.seed = 41;
      config.protocol = protocol;
      config.function = function;
      config.cycles = 200;
      const StressReport report = RunSimStress(config);
      EXPECT_TRUE(report.ok()) << report.Summary();
      EXPECT_EQ(report.cycles, 200);
    }
  }
}

TEST(StressSmokeTest, RuntimeLegHoldsFaultFree) {
  StressConfig config;
  config.seed = 17;
  config.cycles = 200;
  const StressReport report = RunRuntimeStress(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.full_syncs, 0);
  EXPECT_EQ(report.degraded_syncs, 0);
}

TEST(StressSmokeTest, RuntimeLegHoldsUnderFaults) {
  StressConfig config;
  config.seed = 17;
  config.cycles = 200;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.05;
  config.max_delay_rounds = 2;
  config.crash_probability = 0.05;
  const StressReport report = RunRuntimeStress(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // With 24 sites at 20% per-link drop nearly every collection loses a
  // report, so syncs land as degraded — what matters is they happen at all
  // and the invariants hold throughout.
  EXPECT_GT(report.full_syncs + report.degraded_syncs, 0);
}

TEST(StressSmokeTest, TransportParityHolds) {
  StressConfig config;
  config.seed = 23;
  config.cycles = 200;
  const StressReport report = RunTransportParity(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(StressSmokeTest, SameSeedSameReport) {
  StressConfig config;
  config.seed = 29;
  config.cycles = 150;
  config.drop_probability = 0.15;
  config.max_delay_rounds = 2;
  const StressReport a = RunRuntimeStress(config);
  const StressReport b = RunRuntimeStress(config);
  EXPECT_EQ(a.fn_cycles, b.fn_cycles);
  EXPECT_EQ(a.full_syncs, b.full_syncs);
  EXPECT_EQ(a.max_observed_run, b.max_observed_run);
  EXPECT_TRUE(SameViolations(a, b));
}

// The acceptance demo: collapsing the tolerance to zero turns a benign
// near-threshold disagreement of the sampling protocol into a violation;
// the report carries a replay command, and re-running that exact config
// reproduces the identical violation, cycle for cycle.
TEST(StressSmokeTest, SabotagedToleranceViolatesAndReplays) {
  StressConfig violating;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    StressConfig config;
    config.seed = seed;
    config.cycles = 200;
    config.sabotage_tolerance = true;
    const StressReport report = RunSimStress(config);
    if (!report.ok()) {
      found = true;
      violating = report.config;
      EXPECT_NE(report.replay_command.find("--sabotage"), std::string::npos)
          << report.replay_command;
      EXPECT_NE(report.replay_command.find("--seed="), std::string::npos);
      // Deterministic replay: same config, same violations.
      const StressReport replayed = RunSimStress(config);
      EXPECT_FALSE(replayed.ok());
      EXPECT_TRUE(SameViolations(report, replayed));
    }
  }
  EXPECT_TRUE(found)
      << "no seed in 1..64 tripped the sabotaged (zero-tolerance) checker";
}

}  // namespace
}  // namespace sgm
