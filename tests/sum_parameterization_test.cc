// Section-7 machinery: the Adapted Vectors wrapper, the Function
// Transformation, and the Lemma 6/7 equivalences between them.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "functions/l2_norm.h"
#include "functions/sum_parameterization.h"
#include "functions/variance.h"

namespace sgm {
namespace {

TEST(ScaledInputTest, ValueScalesInput) {
  ScaledInputFunction f(std::make_unique<L2Norm>(false), 10.0);
  EXPECT_DOUBLE_EQ(f.Value(Vector{3.0, 4.0}), 50.0);
  EXPECT_EQ(f.name(), "l2_norm_sum");
}

TEST(ScaledInputTest, GradientChainRule) {
  ScaledInputFunction f(L2Norm::SelfJoinSize(), 5.0);
  // f(v) = ‖5v‖² = 25‖v‖², ∇ = 50 v.
  const Vector grad = f.Gradient(Vector{1.0, 2.0});
  EXPECT_NEAR(grad[0], 50.0, 1e-9);
  EXPECT_NEAR(grad[1], 100.0, 1e-9);
}

TEST(ScaledInputTest, RangeMatchesScaledBall) {
  ScaledInputFunction f(std::make_unique<L2Norm>(false), 4.0);
  const Interval range = f.RangeOverBall(Ball(Vector{1.0, 0.0}, 0.5));
  // Inner ball B(4·c, 4·r): norm in [4−2, 4+2].
  EXPECT_DOUBLE_EQ(range.lo, 2.0);
  EXPECT_DOUBLE_EQ(range.hi, 6.0);
}

// Lemma 6(b): surface distances in the average domain are N× shorter.
TEST(ScaledInputTest, SurfaceDistanceLemma6) {
  const int n = 20;
  L2Norm inner(false);
  ScaledInputFunction f(std::make_unique<L2Norm>(false), n);
  const Vector p{3.0, 4.0};
  const double T = 80.0;
  EXPECT_NEAR(f.DistanceToSurface(p, T),
              inner.DistanceToSurface(p * double(n), T) / n, 1e-9);
}

TEST(ScaledInputTest, CloneIsDeep) {
  ScaledInputFunction f(std::make_unique<L2Norm>(false), 3.0);
  auto clone = f.Clone();
  EXPECT_DOUBLE_EQ(clone->Value(Vector{1.0, 0.0}), 3.0);
}

TEST(ScaledInputTest, HomogeneityForwarded) {
  ScaledInputFunction f(CoordinateDispersion::Variance(), 8.0);
  double degree = 0.0;
  EXPECT_TRUE(f.HomogeneityDegree(&degree));
  EXPECT_EQ(degree, 2.0);
}

TEST(TransformTest, ThresholdDivision) {
  CoordinateDispersion stdev(false);     // degree 1
  CoordinateDispersion variance(true);   // degree 2
  EXPECT_DOUBLE_EQ(TransformThresholdForAverage(stdev, 100.0, 10), 10.0);
  EXPECT_DOUBLE_EQ(TransformThresholdForAverage(variance, 100.0, 10), 1.0);
}

TEST(TransformTest, RelativeRateOfGrowth) {
  EXPECT_DOUBLE_EQ(RelativeRateOfGrowth(0.0, 500), 1.0);
  EXPECT_DOUBLE_EQ(RelativeRateOfGrowth(1.0, 500), 500.0);
  EXPECT_DOUBLE_EQ(RelativeRateOfGrowth(2.0, 10), 100.0);
}

// Lemma 7 equivalence (decision level): for homogeneous f, the sum task
// f(N·v) ≶ T and the transformed average task f(v) ≶ T/N^α must agree on
// every point and on every ball-crossing decision.
class Lemma7Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma7Test, DecisionsAgree) {
  const int n = GetParam();
  CoordinateDispersion stdev(false);
  ScaledInputFunction sum_task(CoordinateDispersion::StdDev(), n);
  const double T_sum = 12.0;
  const double T_avg = TransformThresholdForAverage(stdev, T_sum, n);

  Rng rng(77 + n);
  for (int trial = 0; trial < 60; ++trial) {
    Vector v(4);
    for (int j = 0; j < 4; ++j) v[j] = rng.NextDouble(-3.0, 3.0);
    EXPECT_EQ(sum_task.Value(v) > T_sum, stdev.Value(v) > T_avg)
        << "point decision, trial " << trial;

    const Ball ball(v, rng.NextDouble(0.01, 1.0));
    EXPECT_EQ(sum_task.BallCrossesThreshold(ball, T_sum),
              stdev.BallCrossesThreshold(ball, T_avg))
        << "ball decision, trial " << trial;
  }
}

// Lemma 6(a)/(b) numerically: points on the transformed surface map 1:1 to
// the sum surface under x ↦ N·x, and distances scale by N.
TEST_P(Lemma7Test, SurfaceBijection) {
  const int n = GetParam();
  L2Norm norm(false);
  const double T_sum = 40.0;
  const double T_avg = T_sum / n;  // degree-1 homogeneous
  Rng rng(13 * n);
  for (int trial = 0; trial < 20; ++trial) {
    Vector direction(3);
    for (int j = 0; j < 3; ++j) direction[j] = rng.NextGaussian();
    direction *= T_avg / direction.Norm();  // on the average surface
    EXPECT_NEAR(norm.Value(direction * double(n)), T_sum, 1e-9);

    Vector probe(3);
    for (int j = 0; j < 3; ++j) probe[j] = rng.NextDouble(-5.0, 5.0);
    EXPECT_NEAR(norm.DistanceToSurface(probe * double(n), T_sum),
                n * norm.DistanceToSurface(probe, T_avg), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lemma7Test, ::testing::Values(2, 10, 100));

}  // namespace
}  // namespace sgm
