#include "estimators/tail_bounds.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(TailBoundsTest, SigmaFormula) {
  // σ = U / (2 ln(1/δ)).
  EXPECT_NEAR(BernsteinSigma(std::exp(-1.0), 10.0), 5.0, 1e-12);
}

TEST(TailBoundsTest, EpsilonMatchesExample3) {
  // Paper Example 3: U = 17.3, δ = 0.05 → ε ≈ 7.89.
  EXPECT_NEAR(BernsteinEpsilon(0.05, 17.3), 7.89, 0.02);
}

TEST(TailBoundsTest, EpsilonTableValues) {
  // Example-3 table: δ = 0.1 → ε = 9.5; δ = 0.05 → ε = 7.89 (U = 17.3).
  EXPECT_NEAR(BernsteinEpsilon(0.1, 17.3), 9.5, 0.05);
  EXPECT_NEAR(BernsteinEpsilon(0.05, 17.3), 7.89, 0.02);
}

TEST(TailBoundsTest, EpsilonDecreasesWithSmallerDelta) {
  // Smaller δ (stricter) → smaller ε but larger sample (paper trade-off).
  EXPECT_LT(BernsteinEpsilon(0.05, 1.0), BernsteinEpsilon(0.1, 1.0));
  EXPECT_LT(BernsteinEpsilon(0.1, 1.0), BernsteinEpsilon(0.3, 1.0));
}

TEST(TailBoundsTest, EpsilonIsFractionOfUBelowInvE) {
  // (1+√ln(1/δ))/(2 ln(1/δ)) < 1 for δ < e⁻¹ (Section 3's claim).
  for (double delta : {0.05, 0.1, 0.2, 0.3, 0.36}) {
    EXPECT_LT(BernsteinEpsilon(delta, 1.0), 1.0) << "delta=" << delta;
  }
}

TEST(TailBoundsTest, EpsilonScalesWithU) {
  EXPECT_NEAR(BernsteinEpsilon(0.1, 20.0), 2.0 * BernsteinEpsilon(0.1, 10.0),
              1e-12);
}

TEST(TailBoundsTest, McDiarmidTighterThanBernstein) {
  // ε_C ≤ ε for the δ range the paper uses (Equation 9's key property).
  for (double delta : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    EXPECT_LE(McDiarmidEpsilon(delta, 5.0), BernsteinEpsilon(delta, 5.0))
        << "delta=" << delta;
  }
}

TEST(TailBoundsTest, ErrorRatioNearTwo) {
  // Figure 9: for practical δ the (un-simplified) ratio is roughly 2+.
  for (double delta : {0.05, 0.1, 0.2, 0.3}) {
    const double ratio = ErrorRatio(delta);
    EXPECT_GT(ratio, 1.5) << "delta=" << delta;
    EXPECT_LT(ratio, 3.5) << "delta=" << delta;
  }
}

TEST(TailBoundsTest, FullBernsteinDominatesSimplified) {
  for (double delta : {0.05, 0.1, 0.3}) {
    EXPECT_GT(BernsteinEpsilonFull(delta, 1.0), BernsteinEpsilon(delta, 1.0));
  }
}

TEST(TailBoundsTest, McDiarmidTailFormula) {
  // exp(−2ε²/(Nβ²)).
  EXPECT_NEAR(McDiarmidTailProbability(1.0, 1.0, 2), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(McDiarmidTailProbability(0.0, 1.0, 5), 1.0, 1e-12);
}

TEST(TailBoundsTest, McDiarmidTailMonotonicity) {
  EXPECT_LT(McDiarmidTailProbability(2.0, 1.0, 10),
            McDiarmidTailProbability(1.0, 1.0, 10));
  EXPECT_LT(McDiarmidTailProbability(1.0, 1.0, 10),
            McDiarmidTailProbability(1.0, 1.0, 20));
}

// Solving the McDiarmid tail for ε at probability δ with β = U/(ln(1/δ)√N)
// recovers ε_C = U/√(2 ln(1/δ)) — consistency between the two modules.
TEST(TailBoundsTest, McDiarmidEpsilonSolvesTail) {
  const double delta = 0.1, U = 7.0;
  const int n = 400;
  const double beta = U / (std::log(1.0 / delta) * std::sqrt(double(n)));
  const double eps_c = McDiarmidEpsilon(delta, U);
  EXPECT_NEAR(McDiarmidTailProbability(eps_c, beta, n), delta, 1e-9);
}

}  // namespace
}  // namespace sgm
