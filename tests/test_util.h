#ifndef SGM_TESTS_TEST_UTIL_H_
#define SGM_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/check.h"
#include "data/stream.h"

namespace sgm {

/// Deterministic stream whose per-cycle site vectors are scripted up front;
/// repeats the last frame once the script runs out. Lets protocol tests
/// construct exact crossing/non-crossing scenarios.
class ScriptedSource final : public StreamSource {
 public:
  /// `frames[t][i]` is site i's vector at cycle t.
  ScriptedSource(std::vector<std::vector<Vector>> frames, double step_norm)
      : frames_(std::move(frames)), step_norm_(step_norm) {
    SGM_CHECK(!frames_.empty());
  }

  std::string name() const override { return "scripted"; }
  int num_sites() const override {
    return static_cast<int>(frames_.front().size());
  }
  std::size_t dim() const override { return frames_.front().front().dim(); }

  void Advance(std::vector<Vector>* local_vectors) override {
    const std::size_t index =
        next_ < frames_.size() ? next_ : frames_.size() - 1;
    *local_vectors = frames_[index];
    ++next_;
  }

  double max_step_norm() const override { return step_norm_; }

 private:
  std::vector<std::vector<Vector>> frames_;
  double step_norm_;
  std::size_t next_ = 0;
};

}  // namespace sgm

#endif  // SGM_TESTS_TEST_UTIL_H_
