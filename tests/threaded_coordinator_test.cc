// Tests of the threaded coordinator service (src/runtime/coordinator_server)
// against in-process SiteClient threads over real loopback sockets. Runs
// under TSan in CI (unit label), so the accept thread, the per-connection
// reader threads and the cycle thread exercise the locking discipline for
// real — and the behavioural oracle is exact: the same seeded workload
// through the single-process RuntimeDriver must produce the identical
// per-cycle belief sequence, final estimate, epoch and sync counts.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "runtime/coordinator_server.h"
#include "runtime/driver.h"
#include "runtime/site_client.h"

namespace sgm {
namespace {

constexpr int kSites = 4;
constexpr int kCycles = 40;  // Tick cycles after the initialization sync

SyntheticDriftConfig GeneratorConfig() {
  SyntheticDriftConfig config;
  config.num_sites = kSites;
  config.dim = 4;
  config.seed = 23;
  // A short shared-drift period so the global average actually swings
  // across the threshold within the run — the parity claim is vacuous on a
  // workload that never triggers the protocol.
  config.global_period = 60;
  config.global_amplitude = 2.5;
  return config;
}

RuntimeConfig ProtocolConfig() {
  SyntheticDriftGenerator probe(GeneratorConfig());
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = probe.max_step_norm();
  config.drift_norm_cap = probe.max_drift_norm();
  config.seed = 7;
  return config;
}

/// What one deployment run (either harness) must agree on, bit for bit.
struct RunOutcome {
  std::vector<bool> beliefs;  // per cycle, initialization included
  Vector estimate;
  std::int64_t epoch = 0;
  long full_syncs = 0;
  long partial_resolutions = 0;
  long degraded_syncs = 0;
};

RunOutcome RunSimOracle() {
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  RuntimeDriver driver(kSites, norm, ProtocolConfig());
  std::vector<Vector> locals;

  RunOutcome outcome;
  generator.Advance(&locals);
  driver.Initialize(locals);
  outcome.beliefs.push_back(driver.coordinator().BelievesAbove());
  for (int t = 0; t < kCycles; ++t) {
    generator.Advance(&locals);
    driver.Tick(locals);
    outcome.beliefs.push_back(driver.coordinator().BelievesAbove());
  }
  outcome.estimate = driver.coordinator().estimate();
  outcome.epoch = driver.coordinator().epoch();
  outcome.full_syncs = driver.coordinator().full_syncs();
  outcome.partial_resolutions = driver.coordinator().partial_resolutions();
  outcome.degraded_syncs = driver.coordinator().degraded_syncs();
  return outcome;
}

/// One site's worker thread: connect, then serve observations from this
/// site's column of a locally reconstructed generator run — the same
/// deterministic stream the oracle fed the driver.
void SiteThread(int site_id, int port, std::atomic<bool>* ok) {
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  SiteClientConfig config;
  config.site_id = site_id;
  config.num_sites = kSites;
  config.port = port;
  config.runtime = ProtocolConfig();
  SiteClient client(norm, config);
  if (!client.Connect()) {
    ok->store(false);
    return;
  }
  std::vector<Vector> locals;
  long advanced = 0;
  const bool clean = client.Run([&](long cycle) {
    while (advanced <= cycle) {
      generator.Advance(&locals);
      ++advanced;
    }
    return locals[site_id];
  });
  if (!clean || client.cycles_observed() != kCycles + 1) ok->store(false);
}

TEST(ThreadedCoordinatorTest, LoopbackRunMatchesSimDriverExactly) {
  const RunOutcome oracle = RunSimOracle();
  // Guard against a degenerate workload: the run must contain real protocol
  // activity beyond the initialization sync for parity to mean anything.
  ASSERT_GE(oracle.full_syncs + oracle.partial_resolutions, 2)
      << "workload never re-triggered the protocol — retune the generator";

  const L2Norm norm;
  CoordinatorServerConfig server_config;
  server_config.num_sites = kSites;
  server_config.runtime = ProtocolConfig();
  CoordinatorServer server(norm, server_config);
  ASSERT_TRUE(server.Listen());

  std::atomic<bool> sites_ok{true};
  std::vector<std::thread> sites;
  sites.reserve(kSites);
  for (int id = 0; id < kSites; ++id) {
    sites.emplace_back(SiteThread, id, server.port(), &sites_ok);
  }

  ASSERT_TRUE(server.WaitForSites()) << "not all sites registered";
  RunOutcome socket;
  for (int cycle = 0; cycle <= kCycles; ++cycle) {
    ASSERT_TRUE(server.RunCycle()) << "barrier timed out at cycle " << cycle;
    socket.beliefs.push_back(server.BelievesAbove());
  }
  socket.estimate = server.Estimate();
  socket.epoch = server.Epoch();
  socket.full_syncs = server.FullSyncs();
  socket.partial_resolutions = server.PartialResolutions();
  socket.degraded_syncs = server.DegradedSyncs();

  server.Shutdown();
  for (std::thread& site : sites) site.join();
  EXPECT_TRUE(sites_ok.load());

  // The acceptance bar: real sockets, real threads — identical verdicts.
  EXPECT_EQ(socket.beliefs, oracle.beliefs);
  EXPECT_EQ(socket.estimate, oracle.estimate);  // exact, not approximate
  EXPECT_EQ(socket.epoch, oracle.epoch);
  EXPECT_EQ(socket.full_syncs, oracle.full_syncs);
  EXPECT_EQ(socket.partial_resolutions, oracle.partial_resolutions);
  EXPECT_EQ(socket.degraded_syncs, oracle.degraded_syncs);

  // Star topology: the coordinator's deployment-wide paper accounting saw
  // every message of the run, so a faultless socket run can't be cheaper
  // than the sim's single-bus count of the very same protocol exchange.
  EXPECT_GT(server.PaperMessages(), 0);
  EXPECT_GT(server.PaperSiteMessages(), 0);
}

TEST(ThreadedCoordinatorTest, DeadlineBarrierIsInertOnHealthyDeployment) {
  // A generous barrier deadline plus the async outbound path must not
  // change a single verdict on a healthy loopback deployment: the sim
  // oracle parity bar applies unchanged.
  const RunOutcome oracle = RunSimOracle();

  const L2Norm norm;
  CoordinatorServerConfig server_config;
  server_config.num_sites = kSites;
  server_config.runtime = ProtocolConfig();
  server_config.barrier_deadline_ms = 5000;
  server_config.send_queue_frames = 256;
  CoordinatorServer server(norm, server_config);
  ASSERT_TRUE(server.Listen());

  std::atomic<bool> sites_ok{true};
  std::vector<std::thread> sites;
  sites.reserve(kSites);
  for (int id = 0; id < kSites; ++id) {
    sites.emplace_back(SiteThread, id, server.port(), &sites_ok);
  }

  ASSERT_TRUE(server.WaitForSites());
  RunOutcome socket;
  for (int cycle = 0; cycle <= kCycles; ++cycle) {
    ASSERT_TRUE(server.RunCycle()) << "barrier timed out at cycle " << cycle;
    socket.beliefs.push_back(server.BelievesAbove());
  }
  socket.estimate = server.Estimate();
  socket.epoch = server.Epoch();
  socket.full_syncs = server.FullSyncs();
  socket.partial_resolutions = server.PartialResolutions();

  const CoordinatorServer::Health health = server.GetHealth();
  server.Shutdown();
  for (std::thread& site : sites) site.join();
  EXPECT_TRUE(sites_ok.load());

  EXPECT_EQ(socket.beliefs, oracle.beliefs);
  EXPECT_EQ(socket.estimate, oracle.estimate);
  EXPECT_EQ(socket.epoch, oracle.epoch);
  EXPECT_EQ(socket.full_syncs, oracle.full_syncs);
  EXPECT_EQ(socket.partial_resolutions, oracle.partial_resolutions);
  // Nobody straggled, so the deadline machinery must have stayed silent.
  EXPECT_EQ(health.degraded_cycles, 0);
  EXPECT_EQ(health.lag_quarantines, 0);
  EXPECT_EQ(health.lagging_sites, 0);
}

TEST(ThreadedCoordinatorTest, StalledSiteDegradesBarrierThenRejoins) {
  const L2Norm norm;
  CoordinatorServerConfig server_config;
  server_config.num_sites = kSites;
  server_config.runtime = ProtocolConfig();
  // Tight deadline, bounded async queue: a 200 ms stall spans several
  // barrier deadlines, so the coordinator must degrade, quarantine the
  // straggler, and keep every cycle moving.
  server_config.barrier_deadline_ms = 50;
  server_config.send_queue_frames = 256;
  CoordinatorServer server(norm, server_config);
  ASSERT_TRUE(server.Listen());

  std::vector<std::unique_ptr<SiteClient>> clients;
  for (int id = 0; id < kSites; ++id) {
    SiteClientConfig config;
    config.site_id = id;
    config.num_sites = kSites;
    config.port = server.port();
    config.runtime = ProtocolConfig();
    clients.push_back(std::make_unique<SiteClient>(norm, config));
  }
  std::atomic<bool> sites_ok{true};
  std::vector<std::thread> sites;
  for (int id = 0; id < kSites; ++id) {
    sites.emplace_back([id, &clients, &sites_ok] {
      SyntheticDriftGenerator generator(GeneratorConfig());
      if (!clients[id]->Connect()) {
        sites_ok.store(false);
        return;
      }
      std::vector<Vector> locals;
      long advanced = 0;
      if (!clients[id]->Run([&](long cycle) {
            while (advanced <= cycle) {
              generator.Advance(&locals);
              ++advanced;
            }
            return locals[id];
          })) {
        sites_ok.store(false);
      }
    });
  }

  ASSERT_TRUE(server.WaitForSites());
  constexpr int kStallVictim = 2;
  for (int cycle = 0; cycle <= kCycles; ++cycle) {
    // Liveness is the bar: no cycle may block on the frozen site.
    ASSERT_TRUE(server.RunCycle()) << "barrier timed out at cycle " << cycle;
    // Pace the run so the victim's 200 ms nap ends with cycles to spare
    // for the catch-up → rejoin → re-anchor leg.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (cycle == 5) clients[kStallVictim]->InjectProcessingStall(200);
  }

  const CoordinatorServer::Health health = server.GetHealth();
  server.Shutdown();
  for (std::thread& site : sites) site.join();
  EXPECT_TRUE(sites_ok.load());

  EXPECT_GT(health.degraded_cycles, 0);
  EXPECT_GE(health.lag_quarantines, 1);
  // The straggler caught up: verdict lifted, session still connected.
  EXPECT_EQ(health.lagging_sites, 0);
  EXPECT_EQ(health.connected_sites, kSites);
  EXPECT_EQ(server.CyclesRun(), kCycles + 1);
}

TEST(ThreadedCoordinatorTest, ShutdownWithoutCyclesIsClean) {
  // Degenerate lifecycle: sites register, the server shuts down before any
  // cycle. Every thread must unwind without a cycle ever running.
  const L2Norm norm;
  CoordinatorServerConfig server_config;
  server_config.num_sites = kSites;
  server_config.runtime = ProtocolConfig();
  CoordinatorServer server(norm, server_config);
  ASSERT_TRUE(server.Listen());

  std::atomic<bool> sites_ok{true};
  std::vector<std::thread> sites;
  for (int id = 0; id < kSites; ++id) {
    sites.emplace_back([id, port = server.port(), &sites_ok] {
      SyntheticDriftGenerator generator(GeneratorConfig());
      const L2Norm norm_local;
      SiteClientConfig config;
      config.site_id = id;
      config.num_sites = kSites;
      config.port = port;
      config.runtime = ProtocolConfig();
      SiteClient client(norm_local, config);
      if (!client.Connect()) {
        sites_ok.store(false);
        return;
      }
      std::vector<Vector> locals;
      long advanced = 0;
      if (!client.Run([&](long cycle) {
            while (advanced <= cycle) {
              generator.Advance(&locals);
              ++advanced;
            }
            return locals[id];
          })) {
        sites_ok.store(false);
      }
    });
  }
  ASSERT_TRUE(server.WaitForSites());
  server.Shutdown();
  for (std::thread& site : sites) site.join();
  EXPECT_TRUE(sites_ok.load());
  EXPECT_EQ(server.CyclesRun(), 0);
}

}  // namespace
}  // namespace sgm
