// Telemetry determinism contracts:
//  * replaying a seed reproduces the JSONL trace byte-for-byte (logical
//    timestamps, no wall clock in traces);
//  * attaching telemetry never changes protocol behaviour — a faults-off
//    run's paper-comparable counters are identical with and without it.

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/telemetry.h"
#include "sim/stress.h"

namespace sgm {
namespace {

StressConfig FaultyRuntimeConfig() {
  StressConfig config;
  config.seed = 99;
  config.protocol = StressProtocol::kSgm;
  config.function = StressFunction::kLinfDistance;
  config.num_sites = 12;
  config.cycles = 120;
  config.drop_probability = 0.15;
  config.duplicate_probability = 0.05;
  config.max_delay_rounds = 2;
  config.crash_probability = 0.05;
  return config;
}

std::string TraceOf(const StressConfig& base, Telemetry* telemetry) {
  StressConfig config = base;
  config.telemetry = telemetry;
  const StressReport report = RunRuntimeStress(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
  std::ostringstream out;
  telemetry->trace.WriteJsonl(out);
  return out.str();
}

TEST(TraceDeterminismTest, SameSeedReproducesRuntimeTraceByteForByte) {
  const StressConfig config = FaultyRuntimeConfig();
  Telemetry first;
  Telemetry second;
  const std::string trace_a = TraceOf(config, &first);
  const std::string trace_b = TraceOf(config, &second);
  ASSERT_GT(first.trace.size(), 100u)
      << "faulty run produced suspiciously few events";
  EXPECT_EQ(trace_a, trace_b);
}

TEST(TraceDeterminismTest, DifferentSeedsProduceDifferentTraces) {
  StressConfig config = FaultyRuntimeConfig();
  Telemetry first;
  const std::string trace_a = TraceOf(config, &first);
  config.seed = 100;
  Telemetry second;
  const std::string trace_b = TraceOf(config, &second);
  EXPECT_NE(trace_a, trace_b);
}

TEST(TraceDeterminismTest, SimLegTraceIsReproducible) {
  StressConfig config;
  config.seed = 7;
  config.protocol = StressProtocol::kSgm;
  config.function = StressFunction::kL2Norm;
  config.num_sites = 12;
  config.cycles = 150;

  Telemetry first;
  config.telemetry = &first;
  const StressReport report_a = RunSimStress(config);
  Telemetry second;
  config.telemetry = &second;
  const StressReport report_b = RunSimStress(config);
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_b.ok());

  std::ostringstream out_a;
  std::ostringstream out_b;
  first.trace.WriteJsonl(out_a);
  second.trace.WriteJsonl(out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
}

// The observer-effect check: a faults-off runtime run must report exactly
// the same paper-comparable counters whether or not telemetry is attached.
TEST(TraceDeterminismTest, TelemetryDoesNotPerturbFaultlessCounters) {
  StressConfig config;
  config.seed = 13;
  config.protocol = StressProtocol::kSgm;
  config.function = StressFunction::kLinfDistance;
  config.num_sites = 16;
  config.cycles = 150;

  config.telemetry = nullptr;
  const StressReport bare = RunRuntimeStress(config);

  Telemetry telemetry;
  config.telemetry = &telemetry;
  const StressReport observed = RunRuntimeStress(config);

  ASSERT_TRUE(bare.ok()) << bare.Summary();
  ASSERT_TRUE(observed.ok()) << observed.Summary();
  EXPECT_EQ(bare.cycles, observed.cycles);
  EXPECT_EQ(bare.fn_cycles, observed.fn_cycles);
  EXPECT_EQ(bare.full_syncs, observed.full_syncs);
  EXPECT_EQ(bare.degraded_syncs, observed.degraded_syncs);
  EXPECT_EQ(bare.max_observed_run, observed.max_observed_run);
  EXPECT_EQ(bare.retransmissions, observed.retransmissions);
  EXPECT_EQ(bare.rejoins_granted, observed.rejoins_granted);
  EXPECT_EQ(bare.stale_epoch_drops, observed.stale_epoch_drops);
  EXPECT_GT(telemetry.trace.size(), 0u);
}

// Same observer-effect check under fault injection: the fault lottery never
// consults telemetry, so even a hostile run is unperturbed by observation.
TEST(TraceDeterminismTest, TelemetryDoesNotPerturbFaultyCounters) {
  StressConfig config = FaultyRuntimeConfig();

  config.telemetry = nullptr;
  const StressReport bare = RunRuntimeStress(config);

  Telemetry telemetry;
  config.telemetry = &telemetry;
  const StressReport observed = RunRuntimeStress(config);

  ASSERT_TRUE(bare.ok()) << bare.Summary();
  ASSERT_TRUE(observed.ok()) << observed.Summary();
  EXPECT_EQ(bare.fn_cycles, observed.fn_cycles);
  EXPECT_EQ(bare.full_syncs, observed.full_syncs);
  EXPECT_EQ(bare.degraded_syncs, observed.degraded_syncs);
  EXPECT_EQ(bare.retransmissions, observed.retransmissions);
  EXPECT_EQ(bare.rejoins_granted, observed.rejoins_granted);
  EXPECT_EQ(bare.stale_epoch_drops, observed.stale_epoch_drops);
}

// Every event a real faulty run emits must conform to the schema catalog —
// the in-process version of `trace_inspect --validate`.
TEST(TraceDeterminismTest, FaultyRunTraceValidatesAgainstSchema) {
  const StressConfig config = FaultyRuntimeConfig();
  Telemetry telemetry;
  const std::string trace = TraceOf(config, &telemetry);

  std::istringstream in(trace);
  std::string line;
  long lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string error;
    ASSERT_TRUE(ValidateTraceJsonLine(line, &error)) << line << ": " << error;
  }
  EXPECT_GT(lines, 0);
}

}  // namespace
}  // namespace sgm
