// Tests for cross-process trace aggregation (obs/trace_merge.h): the
// causal merge ordering (cycle → span → input order → per-process ts),
// proc/tepoch round-tripping through JSONL, fallback process labels,
// span-forest summarization over a merged timeline, cross-process span
// detection and orphan reporting.

#include "obs/trace_merge.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/trace.h"

namespace sgm {
namespace {

/// Builds one process's log through a real TraceLog so the events carry
/// the same stamps (ts, proc, tepoch) the runtime produces.
class LogBuilder {
 public:
  explicit LogBuilder(const std::string& proc) { log_.SetProcess(proc); }

  LogBuilder& Cycle(long cycle) {
    log_.SetCycle(cycle);
    return *this;
  }
  LogBuilder& Epoch(long epoch) {
    log_.SetEpoch(epoch);
    return *this;
  }
  LogBuilder& Emit(const std::string& cat, const std::string& name, int actor,
                   std::vector<TraceArg> args = {}) {
    log_.Emit(cat, name, actor, std::move(args));
    return *this;
  }
  std::vector<TraceEvent> events() const { return log_.events(); }

 private:
  TraceLog log_;
};

TEST(MergeTraceTimelinesTest, OrdersByCycleThenSpanThenInputOrder) {
  // Coordinator mints span 5 in cycle 2 and span 9 in cycle 3; site 0's
  // echoes of span 5 carry later per-process ts but must interleave by
  // cycle and span, with the coordinator's events first within a span.
  LogBuilder coord("coordinator");
  coord.Cycle(2)
      .Emit("protocol", "sync_cycle_begin", -1,
            {{"span", 5}, {"trigger", std::string("scheduled")}})
      .Cycle(3)
      .Emit("protocol", "sync_cycle_begin", -1,
            {{"span", 9}, {"trigger", std::string("local_violation")}});
  LogBuilder site("site-0");
  site.Cycle(2)
      .Emit("transport", "msg_send", 0,
            {{"type", std::string("DriftReport")}, {"span", 5}, {"bytes", 40}})
      .Cycle(3)
      .Emit("transport", "msg_send", 0,
            {{"type", std::string("DriftReport")}, {"span", 9}, {"bytes", 40}});

  const std::vector<TraceEvent> merged =
      MergeTraceTimelines({coord.events(), site.events()});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].proc, "coordinator");  // span 5: coordinator first
  EXPECT_EQ(merged[0].cycle, 2);
  EXPECT_EQ(merged[1].proc, "site-0");
  EXPECT_EQ(merged[1].cycle, 2);
  EXPECT_EQ(merged[2].proc, "coordinator");  // then cycle 3
  EXPECT_EQ(merged[3].proc, "site-0");
}

TEST(MergeTraceTimelinesTest, SpanlessEventsSortBeforeCascades) {
  LogBuilder coord("coordinator");
  coord.Cycle(4).Emit("protocol", "sync_cycle_begin", -1, {{"span", 7}});
  LogBuilder site("site-1");
  site.Cycle(4).Emit("protocol", "local_alarm", 1);  // no span: the trigger
  const std::vector<TraceEvent> merged =
      MergeTraceTimelines({coord.events(), site.events()});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].name, "local_alarm");  // cause before effect
  EXPECT_EQ(merged[1].name, "sync_cycle_begin");
}

TEST(MergeTraceTimelinesTest, PreservesPerProcessTsWithoutRestamping) {
  LogBuilder site("site-0");
  site.Cycle(0)
      .Emit("reliability", "heartbeat", 0)
      .Emit("reliability", "heartbeat", 0);
  const std::vector<TraceEvent> merged = MergeTraceTimelines({site.events()});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].ts, 0);
  EXPECT_EQ(merged[1].ts, 1);
}

TEST(ParseTraceEventLineTest, RoundTripsProcAndEpochStamps) {
  LogBuilder builder("site-3");
  builder.Cycle(11).Epoch(4).Emit(
      "protocol", "anchor_applied", 3,
      {{"epoch", 4}, {"source", std::string("checkpoint")}});
  std::ostringstream line;
  TraceLog::AppendEventJson(builder.events()[0], line);

  TraceEvent parsed;
  std::string error;
  ASSERT_TRUE(ParseTraceEventLine(line.str(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.proc, "site-3");
  EXPECT_EQ(parsed.epoch, 4);
  EXPECT_EQ(parsed.cycle, 11);
  EXPECT_EQ(parsed.name, "anchor_applied");

  // And the stamped line still passes the schema validator.
  EXPECT_TRUE(ValidateTraceJsonLine(line.str(), &error)) << error;
}

TEST(ParseTraceEventLineTest, StampsAreOmittedWhenUnset) {
  // A log with no process label / epoch must serialize exactly as the
  // pre-stamping format — the byte-compatibility contract for existing
  // single-process traces.
  TraceLog log;
  log.Emit("reliability", "heartbeat", 2);
  std::ostringstream line;
  TraceLog::AppendEventJson(log.events()[0], line);
  EXPECT_EQ(line.str(),
            "{\"ts\":0,\"cycle\":0,\"cat\":\"reliability\","
            "\"name\":\"heartbeat\",\"actor\":2,\"args\":{}}");
}

TEST(LoadTraceJsonlTest, AppliesFallbackProcAndValidates) {
  const std::string path = ::testing::TempDir() + "/merge_load.jsonl";
  {
    std::ofstream out(path);
    out << "{\"ts\":0,\"cycle\":1,\"cat\":\"protocol\",\"name\":\"x\","
           "\"actor\":0,\"args\":{}}\n";
    out << "{\"ts\":1,\"cycle\":1,\"cat\":\"protocol\",\"name\":\"y\","
           "\"actor\":0,\"proc\":\"stamped\",\"args\":{}}\n";
  }
  std::vector<TraceEvent> events;
  ASSERT_TRUE(LoadTraceJsonl(path, "site0", false, &events).ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].proc, "site0");   // fallback filled in
  EXPECT_EQ(events[1].proc, "stamped");  // explicit stamp wins
  std::remove(path.c_str());
}

TEST(LoadTraceJsonlTest, ValidateRejectsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/merge_bad.jsonl";
  {
    std::ofstream out(path);
    out << "{\"ts\":0}\n";  // missing required keys
  }
  std::vector<TraceEvent> events;
  EXPECT_FALSE(LoadTraceJsonl(path, "p", true, &events).ok());
  std::remove(path.c_str());
}

// ── Tolerant loading (crash-adjacent files) ──────────────────────────────
//
// A process that dies mid-write leaves an empty file or a torn final line;
// the tolerant loader used by trace_inspect --merge must shrug at both
// while still rejecting genuine mid-file corruption.

const char kGoodLine[] =
    "{\"ts\":0,\"cycle\":1,\"cat\":\"reliability\",\"name\":\"heartbeat\","
    "\"actor\":2,\"args\":{}}";

TEST(LoadTraceJsonlTolerantTest, EmptyFileYieldsZeroEventsNoWarning) {
  const std::string path = ::testing::TempDir() + "/merge_empty.jsonl";
  { std::ofstream out(path); }
  std::vector<TraceEvent> events;
  std::string warning;
  ASSERT_TRUE(
      LoadTraceJsonlTolerant(path, "p", true, &events, &warning).ok());
  EXPECT_TRUE(events.empty());
  EXPECT_TRUE(warning.empty());
  std::remove(path.c_str());
}

TEST(LoadTraceJsonlTolerantTest, DropsTornFinalLineWithWarning) {
  const std::string path = ::testing::TempDir() + "/merge_torn.jsonl";
  {
    std::ofstream out(path);
    out << kGoodLine << "\n";
    out << "{\"ts\":1,\"cycle\":1,\"cat\":\"reli";  // cut mid-write, no \n
  }
  std::vector<TraceEvent> events;
  std::string warning;
  ASSERT_TRUE(
      LoadTraceJsonlTolerant(path, "site-2", true, &events, &warning).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "heartbeat");
  EXPECT_EQ(events[0].proc, "site-2");
  EXPECT_NE(warning.find(":2"), std::string::npos) << warning;
  EXPECT_NE(warning.find("torn"), std::string::npos) << warning;
  std::remove(path.c_str());
}

TEST(LoadTraceJsonlTolerantTest, MidFileCorruptionStillFails) {
  const std::string path = ::testing::TempDir() + "/merge_midbad.jsonl";
  {
    std::ofstream out(path);
    out << "not json at all\n";
    out << kGoodLine << "\n";
  }
  std::vector<TraceEvent> events;
  std::string warning;
  const Status loaded =
      LoadTraceJsonlTolerant(path, "p", true, &events, &warning);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.message().find(":1"), std::string::npos)
      << loaded.message();
  std::remove(path.c_str());
}

TEST(LoadTraceJsonlTolerantTest, MissingFileIsNotFound) {
  std::vector<TraceEvent> events;
  std::string warning;
  const Status loaded = LoadTraceJsonlTolerant(
      ::testing::TempDir() + "/definitely-missing.jsonl", "p", true, &events,
      &warning);
  EXPECT_EQ(loaded.code(), StatusCode::kNotFound);
}

TEST(SummarizeSpanForestTest, DetectsCrossProcessSpansAndCriticalPath) {
  // Probe cascade: the coordinator mints span 1 (root) and probe span 2;
  // sites answer on span 2. Span 2's events come from three processes —
  // the cross-process edge — and the critical path runs through it.
  LogBuilder coord("coordinator");
  coord.Cycle(5)
      .Emit("protocol", "sync_cycle_begin", -1,
            {{"span", 1}, {"trigger", std::string("local_violation")}})
      .Emit("transport", "msg_send", -1,
            {{"type", std::string("ProbeRequest")},
             {"span", 2},
             {"parent", 1},
             {"bytes", 24}});
  LogBuilder site0("site-0");
  site0.Cycle(5).Emit(
      "transport", "msg_send", 0,
      {{"type", std::string("DriftReport")}, {"span", 2}, {"parent", 1},
       {"bytes", 48}});
  LogBuilder site1("site-1");
  site1.Cycle(5).Emit(
      "transport", "msg_send", 1,
      {{"type", std::string("DriftReport")}, {"span", 2}, {"parent", 1},
       {"bytes", 48}});

  const std::vector<TraceEvent> merged = MergeTraceTimelines(
      {coord.events(), site0.events(), site1.events()});
  const SpanForestSummary forest = SummarizeSpanForest(merged);
  EXPECT_EQ(forest.spans, 2);
  EXPECT_EQ(forest.roots, 1);
  EXPECT_EQ(forest.cross_process_spans, 1);
  EXPECT_TRUE(forest.orphans.empty());
  ASSERT_EQ(forest.root_details.size(), 1u);
  const SpanForestSummary::Root& root = forest.root_details[0];
  EXPECT_EQ(root.label, "sync_cycle");
  EXPECT_EQ(root.trigger, "local_violation");
  EXPECT_EQ(root.spans, 2);
  // The cascade's critical path crosses from the coordinator into the
  // site processes that answered last.
  EXPECT_GE(root.critical_path_procs.size(), 2u);
}

TEST(SummarizeSpanForestTest, ReportsOrphans) {
  LogBuilder site("site-0");
  site.Cycle(2).Emit("transport", "msg_send", 0,
                     {{"type", std::string("DriftReport")},
                      {"span", 44},
                      {"parent", 99},  // parent never minted anywhere
                      {"bytes", 48}});
  const SpanForestSummary forest =
      SummarizeSpanForest(MergeTraceTimelines({site.events()}));
  ASSERT_EQ(forest.orphans.size(), 1u);
  EXPECT_NE(forest.orphans[0].find("99"), std::string::npos);
}

}  // namespace
}  // namespace sgm
