// Head-based trace sampling: decision determinism, rate-1.0 byte-identity
// with the pre-sampling format, multi-seed volume reduction with unchanged
// protocol behavior, and Prometheus exposition of the obs.* self-cost
// meters. See docs/OBSERVABILITY.md ("Trace sampling").

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sim/stress.h"

namespace sgm {
namespace {

std::string Jsonl(const TraceLog& log) {
  std::ostringstream out;
  log.WriteJsonl(out);
  return out.str();
}

TEST(TraceSampleDecisionTest, DeterministicAndRateFaithful) {
  for (std::int64_t root = 1; root <= 200; ++root) {
    EXPECT_EQ(TraceSampleDecision(7, root, 0.3),
              TraceSampleDecision(7, root, 0.3));
    EXPECT_TRUE(TraceSampleDecision(7, root, 1.0));
    EXPECT_FALSE(TraceSampleDecision(7, root, 0.0));
  }
  // The decision is a hash of (seed, root): different seeds must not agree
  // everywhere, and the empirical keep rate should track the nominal one.
  int kept = 0;
  int seed_disagreements = 0;
  for (std::int64_t root = 1; root <= 2000; ++root) {
    const bool a = TraceSampleDecision(7, root, 0.25);
    if (a) ++kept;
    if (a != TraceSampleDecision(8, root, 0.25)) ++seed_disagreements;
  }
  EXPECT_GT(kept, 2000 * 0.15);
  EXPECT_LT(kept, 2000 * 0.35);
  EXPECT_GT(seed_disagreements, 0);
}

// A TraceLog explicitly configured at rate 1.0 must behave exactly like a
// log that never heard of sampling: same events, same bytes. This is the
// unit-level half of the byte-identity contract (the CI trace job checks
// the end-to-end half against a committed dst_stress trace).
TEST(TraceSamplingTest, RateOneIsByteIdenticalToUnconfiguredLog) {
  TraceLog legacy;
  TraceLog sampled;
  sampled.ConfigureSampling(1.0, 42);
  for (TraceLog* log : {&legacy, &sampled}) {
    log->SetCycle(3);
    log->Emit("protocol", "sync_cycle_begin", -1,
              {{"span", 17}, {"trigger", "local_alarm"}});
    log->Emit("transport", "msg_send", -1,
              {{"type", "kProbeRequest"}, {"span", 18}, {"parent", 17},
               {"bytes", 48}});
    log->Emit("reliability", "heartbeat", 4);
    log->Emit("fault", "drop", 2, {{"type", "kReport"}});
    log->Emit("audit", "audit_verdict", -1, {{"verdict", "tn"}});
  }
  EXPECT_EQ(Jsonl(legacy), Jsonl(sampled));
  EXPECT_EQ(legacy.self_cost().events_recorded,
            sampled.self_cost().events_recorded);
  EXPECT_EQ(sampled.self_cost().events_sampled_out, 0);
}

// At a low rate, cascade events whose span carries the unsampled tag are
// dropped, span-tag bits are stripped from everything that IS recorded,
// and the exempt categories survive regardless of their span.
TEST(TraceSamplingTest, TaggedCascadesDropAndExemptCategoriesSurvive) {
  TraceLog log;
  log.ConfigureSampling(0.5, 42);
  const std::int64_t tagged = 21 | kSpanUnsampledBit;
  log.Emit("protocol", "sync_cycle_begin", -1,
           {{"span", tagged}, {"trigger", "local_alarm"}});
  log.Emit("transport", "msg_send", -1,
           {{"type", "kReport"}, {"span", 22 | kSpanUnsampledBit},
            {"parent", tagged}, {"bytes", 48}});
  log.Emit("protocol", "sync_cycle_begin", -1,
           {{"span", 23}, {"trigger", "local_alarm"}});
  log.Emit("alert", "alert_raised", -1,
           {{"span", tagged}, {"signal", "transport.wire_messages"}});
  log.Emit("recovery", "checkpoint_write", -1, {{"span", tagged}});

  const std::vector<TraceEvent> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "sync_cycle_begin");
  EXPECT_EQ(events[0].args[0].int_value, 23);  // untagged cascade kept
  EXPECT_EQ(events[1].cat, "alert");
  EXPECT_EQ(events[1].args[0].int_value, 21);  // tag stripped on record
  EXPECT_EQ(events[2].cat, "recovery");
  EXPECT_EQ(log.self_cost().events_sampled_out, 2);
}

// Same seed + same rate ⇒ byte-identical trace across runs, the replay
// contract extended to sampled traces.
TEST(TraceSamplingTest, SampledRuntimeTraceReplaysByteIdentical) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Telemetry telemetry;
    StressConfig config;
    config.seed = 42;
    config.cycles = 80;
    config.drop_probability = 0.1;
    config.telemetry = &telemetry;
    config.trace_sample_rate = 0.1;
    const StressReport report = RunRuntimeStress(config);
    EXPECT_TRUE(report.ok()) << report.Summary();
    const std::string jsonl = Jsonl(telemetry.trace);
    EXPECT_FALSE(jsonl.empty());
    if (run == 0) {
      first = jsonl;
    } else {
      EXPECT_EQ(first, jsonl) << "same seed+rate must replay byte-for-byte";
    }
  }
}

long CountCategory(const std::vector<TraceEvent>& events,
                   const std::string& cat) {
  long n = 0;
  for (const TraceEvent& event : events) {
    if (event.cat == cat) ++n;
  }
  return n;
}

// The acceptance sweep: across many seeds, rate 0.1 cuts trace bytes by at
// least 80% while leaving every protocol-visible number — invariants,
// sync/reliability counters, the audit confusion matrix, and the
// unconditional audit/alert planes — exactly where the full trace left
// them. Sampling observes; it never steers.
TEST(TraceSamplingTest, FiftySeedSweepCutsBytesWithoutChangingBehavior) {
  long long full_bytes = 0;
  long long sampled_bytes = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    StressConfig config;
    config.seed = seed;
    config.cycles = 60;
    config.drop_probability = 0.1;
    config.audit = true;

    Telemetry full;
    config.telemetry = &full;
    config.trace_sample_rate = 1.0;
    const StressReport full_report = RunRuntimeStress(config);

    Telemetry sampled;
    config.telemetry = &sampled;
    config.trace_sample_rate = 0.1;
    const StressReport sampled_report = RunRuntimeStress(config);

    ASSERT_TRUE(full_report.ok()) << full_report.Summary();
    ASSERT_TRUE(sampled_report.ok()) << sampled_report.Summary();
    EXPECT_EQ(full_report.fn_cycles, sampled_report.fn_cycles);
    EXPECT_EQ(full_report.full_syncs, sampled_report.full_syncs);
    EXPECT_EQ(full_report.degraded_syncs, sampled_report.degraded_syncs);
    EXPECT_EQ(full_report.retransmissions, sampled_report.retransmissions);
    EXPECT_EQ(full_report.rejoins_granted, sampled_report.rejoins_granted);
    EXPECT_EQ(full_report.stale_epoch_drops,
              sampled_report.stale_epoch_drops);
    EXPECT_EQ(full_report.max_observed_run, sampled_report.max_observed_run);
    EXPECT_EQ(full_report.audit.true_positives,
              sampled_report.audit.true_positives);
    EXPECT_EQ(full_report.audit.false_positives,
              sampled_report.audit.false_positives);
    EXPECT_EQ(full_report.audit.false_negatives,
              sampled_report.audit.false_negatives);
    EXPECT_EQ(full_report.audit.true_negatives,
              sampled_report.audit.true_negatives);

    const std::vector<TraceEvent> full_events = full.trace.events();
    const std::vector<TraceEvent> sampled_events = sampled.trace.events();
    // audit.* and alert.* are exempt from sampling: identical counts.
    EXPECT_EQ(CountCategory(full_events, "audit"),
              CountCategory(sampled_events, "audit"));
    EXPECT_EQ(CountCategory(full_events, "alert"),
              CountCategory(sampled_events, "alert"));
    // The hot emitters (transport msg_send/retransmit) skip the Emit call
    // outright for unsampled cascades, so the sampled run sees fewer
    // emits — but everything that IS emitted is accounted for.
    const TraceLog::SelfCost cost = sampled.trace.self_cost();
    EXPECT_LE(cost.events_emitted, full.trace.self_cost().events_emitted);
    EXPECT_EQ(cost.events_emitted,
              cost.events_recorded + cost.events_sampled_out);

    full_bytes += static_cast<long long>(Jsonl(full.trace).size());
    sampled_bytes += static_cast<long long>(Jsonl(sampled.trace).size());
  }
  EXPECT_LE(sampled_bytes * 5, full_bytes)
      << "rate 0.1 must cut trace bytes by >=80%: full=" << full_bytes
      << " sampled=" << sampled_bytes;
}

// The obs.* self-cost meters flow registry → Prometheus text exposition.
TEST(TraceSamplingTest, PrometheusExposesObsSelfCostMeters) {
  Telemetry telemetry;
  StressConfig config;
  config.seed = 5;
  config.cycles = 40;
  config.telemetry = &telemetry;
  config.trace_sample_rate = 0.1;
  const StressReport report = RunRuntimeStress(config);
  ASSERT_TRUE(report.ok()) << report.Summary();

  std::ostringstream out;
  telemetry.WritePrometheus(out);
  const std::string text = out.str();
  for (const char* needle :
       {"\nsgm_obs_trace_events_total ", "\nsgm_obs_trace_recorded_total ",
        "\nsgm_obs_trace_sampled_out_total ",
        "\nsgm_obs_telemetry_ns_total "}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing exposition line " << needle;
  }
  EXPECT_NE(text.find("# TYPE sgm_obs_trace_events_total counter"),
            std::string::npos);
  const TraceLog::SelfCost cost = telemetry.trace.self_cost();
  EXPECT_GT(cost.events_emitted, 0);
  EXPECT_GT(cost.events_sampled_out, 0);
  EXPECT_EQ(cost.events_emitted,
            cost.events_recorded + cost.events_sampled_out);
}

}  // namespace
}  // namespace sgm
