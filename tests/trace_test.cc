// TraceLog: logical timestamps, JSONL schema round-trip through the
// validator, Chrome trace_event output shape, and escaping.

#include "obs/trace.h"

#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace sgm {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TraceLogTest, TimestampsAreMonotoneAndCycleStamped) {
  TraceLog log;
  log.Emit("run", "run_begin", -1);
  log.SetCycle(7);
  log.Emit("reliability", "heartbeat", 3);
  log.Emit("protocol", "epoch_bump", -1, {{"epoch", 2}});

  const std::vector<TraceEvent> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts, 0);
  EXPECT_EQ(events[0].cycle, 0);
  EXPECT_EQ(events[1].ts, 1);
  EXPECT_EQ(events[1].cycle, 7);
  EXPECT_EQ(events[2].ts, 2);
  EXPECT_EQ(events[2].actor, -1);
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].key, "epoch");
  EXPECT_EQ(events[2].args[0].int_value, 2);
}

// One event of every catalog entry, with its required args, must survive
// the JSONL writer → line validator round trip. This is the test that
// keeps writer, catalog and docs/OBSERVABILITY.md aligned.
TEST(TraceLogTest, EveryCatalogEventValidatesAfterJsonlRoundTrip) {
  TraceLog log;
  log.SetCycle(12);
  log.Emit("protocol", "local_alarm", 4);
  log.Emit("protocol", "probe_begin", -1, {{"epoch", 3}});
  log.Emit("protocol", "partial_resolution", -1);
  log.Emit("protocol", "one_d_resolution", -1);
  log.Emit("protocol", "full_sync_begin", -1, {{"epoch", 3}});
  log.Emit("protocol", "full_sync_complete", -1,
           {{"epoch", 3}, {"degraded", 0}});
  log.Emit("protocol", "sync_rerequest", -1, {{"epoch", 3}, {"site", 2}});
  log.Emit("protocol", "epoch_bump", -1, {{"epoch", 4}});
  log.Emit("protocol", "anchor_applied", 2,
           {{"epoch", 4}, {"source", "new_estimate"}});
  log.Emit("protocol", "epoch_gap", 2, {{"from_epoch", 2}, {"to_epoch", 4}});
  log.Emit("protocol", "stale_epoch_drop", 2, {{"msg_epoch", 1}});
  log.Emit("protocol", "late_report", -1, {{"site", 5}});
  log.Emit("reliability", "heartbeat", 0);
  log.Emit("reliability", "rejoin_request", 1);
  log.Emit("reliability", "rejoin_grant", 1, {{"epoch", 4}});
  log.Emit("reliability", "retransmit", 0,
           {{"sender", 0}, {"seq", 17}, {"attempt", 2}});
  log.Emit("reliability", "give_up", 0, {{"sender", 0}, {"seq", 17}});
  log.Emit("reliability", "duplicate_suppressed", 3,
           {{"sender", 1}, {"seq", 9}});
  log.Emit("failure", "heartbeat_miss", 6, {{"misses", 2}});
  log.Emit("failure", "suspect", 6, {{"misses", 4}});
  log.Emit("failure", "dead", 6, {{"deaths", 1}});
  log.Emit("failure", "unreachable", 6);
  log.Emit("failure", "quarantined", 6, {{"until_cycle", 40}});
  log.Emit("failure", "rejoin_begin", 6);
  log.Emit("failure", "rejoin_complete", 6);
  log.Emit("fault", "site_crash", 8);
  log.Emit("fault", "site_recover", 8);
  log.Emit("fault", "drop", 8, {{"type", "Report"}});
  log.Emit("fault", "duplicate", 8, {{"type", "Ack"}});
  log.Emit("fault", "delay", 8, {{"type", "Probe"}, {"rounds", 2}});
  log.Emit("run", "run_begin", -1);
  log.Emit("run", "cell_begin", -1, {{"seed", 1}, {"drop", 0.3}});

  std::ostringstream out;
  log.WriteJsonl(out);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), log.size());
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(ValidateTraceJsonLine(line, &error)) << line << ": " << error;
  }
}

TEST(TraceValidatorTest, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(ValidateTraceJsonLine("not json", &error));
  EXPECT_FALSE(ValidateTraceJsonLine("[1,2]", &error));
  // Missing structural keys.
  EXPECT_FALSE(ValidateTraceJsonLine(
      R"({"cycle":0,"cat":"run","name":"run_begin","actor":0,"args":{}})",
      &error));
  // Unknown event name.
  EXPECT_FALSE(ValidateTraceJsonLine(
      R"({"ts":0,"cycle":0,"cat":"run","name":"bogus","actor":0,"args":{}})",
      &error));
  EXPECT_NE(error.find("unknown event"), std::string::npos);
  // Wrong category for a known name.
  EXPECT_FALSE(ValidateTraceJsonLine(
      R"({"ts":0,"cycle":0,"cat":"fault","name":"heartbeat","actor":0,)"
      R"("args":{}})",
      &error));
  // Missing required arg.
  EXPECT_FALSE(ValidateTraceJsonLine(
      R"({"ts":0,"cycle":0,"cat":"protocol","name":"epoch_bump","actor":0,)"
      R"("args":{}})",
      &error));
  EXPECT_NE(error.find("epoch"), std::string::npos);
  // Extra args beyond the required set are allowed.
  EXPECT_TRUE(ValidateTraceJsonLine(
      R"({"ts":0,"cycle":0,"cat":"protocol","name":"epoch_bump","actor":0,)"
      R"("args":{"epoch":1,"extra":"ok"}})",
      &error))
      << error;
}

TEST(TraceLogTest, ChromeTraceParsesAndNamesThreads) {
  TraceLog log;
  log.SetCycle(5);
  log.Emit("protocol", "epoch_bump", -1, {{"epoch", 1}});
  log.Emit("reliability", "heartbeat", 2);

  std::ostringstream out;
  log.WriteChromeTrace(out);
  auto parsed = JsonValue::Parse(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* events = parsed.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 2 thread_name metadata rows (coordinator + site 2) + 2 instant events.
  ASSERT_EQ(events->array().size(), 4u);

  const JsonValue& coordinator_meta = events->array()[0];
  EXPECT_EQ(coordinator_meta.Find("ph")->string_value(), "M");
  EXPECT_DOUBLE_EQ(coordinator_meta.NumberOr("tid", -1), 0.0);  // actor -1
  EXPECT_EQ(coordinator_meta.Find("args")->Find("name")->string_value(),
            "coordinator");

  const JsonValue& instant = events->array()[2];
  EXPECT_EQ(instant.Find("name")->string_value(), "epoch_bump");
  EXPECT_EQ(instant.Find("ph")->string_value(), "i");
  // The cycle rides along as an arg on every instant event.
  EXPECT_DOUBLE_EQ(instant.Find("args")->NumberOr("cycle", -1), 5.0);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceLogTest, JsonlEscapesStringArgs) {
  TraceLog log;
  log.Emit("fault", "drop", 0, {{"type", "weird\"name"}});
  std::ostringstream out;
  log.WriteJsonl(out);
  std::string error;
  EXPECT_TRUE(ValidateTraceJsonLine(Lines(out.str())[0], &error)) << error;
}

}  // namespace
}  // namespace sgm
