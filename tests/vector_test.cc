#include "core/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(VectorTest, DefaultIsEmpty) {
  Vector v;
  EXPECT_EQ(v.dim(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(VectorTest, ZeroConstruction) {
  Vector v(4);
  EXPECT_EQ(v.dim(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(v[j], 0.0);
}

TEST(VectorTest, FillConstruction) {
  Vector v(3, 2.5);
  EXPECT_EQ(v.Sum(), 7.5);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, -2.0, 3.0};
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_EQ(v[1], -2.0);
}

TEST(VectorTest, AdditionSubtraction) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  Vector sum = a + b;
  EXPECT_EQ(sum, (Vector{4.0, 1.0}));
  Vector diff = a - b;
  EXPECT_EQ(diff, (Vector{-2.0, 3.0}));
}

TEST(VectorTest, ScalarOps) {
  Vector v{2.0, -4.0};
  EXPECT_EQ(v * 0.5, (Vector{1.0, -2.0}));
  EXPECT_EQ(0.5 * v, (Vector{1.0, -2.0}));
  EXPECT_EQ(v / 2.0, (Vector{1.0, -2.0}));
}

TEST(VectorTest, Axpy) {
  Vector v{1.0, 1.0};
  v.Axpy(2.0, Vector{1.0, -1.0});
  EXPECT_EQ(v, (Vector{3.0, -1.0}));
}

TEST(VectorTest, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
  EXPECT_DOUBLE_EQ(v.LInfNorm(), 4.0);
}

TEST(VectorTest, DotAndDistance) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), std::sqrt(27.0));
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(VectorTest, SetZeroKeepsDimension) {
  Vector v{1.0, 2.0};
  v.SetZero();
  EXPECT_EQ(v.dim(), 2u);
  EXPECT_EQ(v.Norm(), 0.0);
}

TEST(VectorTest, MeanAndSumOfVectors) {
  std::vector<Vector> vs = {Vector{1.0, 0.0}, Vector{3.0, 2.0},
                            Vector{2.0, 4.0}};
  EXPECT_EQ(Sum(vs), (Vector{6.0, 6.0}));
  EXPECT_EQ(Mean(vs), (Vector{2.0, 2.0}));
}

TEST(VectorTest, ToStringRendersCoordinates) {
  Vector v{1.5, -2.0};
  EXPECT_EQ(v.ToString(), "[1.5, -2]");
}

TEST(VectorTest, CauchySchwarzHolds) {
  Vector a{1.0, -2.0, 0.5, 4.0};
  Vector b{-3.0, 1.0, 2.0, 0.25};
  EXPECT_LE(std::abs(a.Dot(b)), a.Norm() * b.Norm() + 1e-12);
}

TEST(VectorTest, TriangleInequalityHolds) {
  Vector a{1.0, -2.0, 3.0};
  Vector b{0.5, 5.0, -1.0};
  EXPECT_LE((a + b).Norm(), a.Norm() + b.Norm() + 1e-12);
}

class NormOrderingTest : public ::testing::TestWithParam<int> {};

// ‖v‖_∞ ≤ ‖v‖₂ ≤ ‖v‖₁ ≤ √d‖v‖₂ for every dimension swept.
TEST_P(NormOrderingTest, StandardNormInequalities) {
  const int d = GetParam();
  Vector v(d);
  for (int j = 0; j < d; ++j) v[j] = (j % 2 == 0 ? 1.0 : -1.0) * (j + 0.5);
  EXPECT_LE(v.LInfNorm(), v.Norm() + 1e-12);
  EXPECT_LE(v.Norm(), v.L1Norm() + 1e-12);
  EXPECT_LE(v.L1Norm(), std::sqrt(static_cast<double>(d)) * v.Norm() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Dims, NormOrderingTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64));

}  // namespace
}  // namespace sgm
