#include "geometry/volume.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sgm {
namespace {

TEST(VolumeTest, SampleBoxStaysInside) {
  Rng rng(1);
  BoxDomain box{3, -2.0, 4.0};
  for (int i = 0; i < 1000; ++i) {
    const Vector p = SampleBox(box, &rng);
    ASSERT_EQ(p.dim(), 3u);
    for (int j = 0; j < 3; ++j) {
      EXPECT_GE(p[j], -2.0);
      EXPECT_LT(p[j], 4.0);
    }
  }
}

TEST(VolumeTest, FullCoverage) {
  Rng rng(2);
  BoxDomain box{2, 0.0, 1.0};
  // Ball of radius 2 centered mid-box covers the whole unit square.
  std::vector<Ball> balls = {Ball(Vector{0.5, 0.5}, 2.0)};
  EXPECT_DOUBLE_EQ(UnionOfBallsCoverage(balls, box, 2000, &rng), 1.0);
}

TEST(VolumeTest, EmptyishCoverage) {
  Rng rng(3);
  BoxDomain box{2, 0.0, 1.0};
  std::vector<Ball> balls = {Ball(Vector{10.0, 10.0}, 0.5)};
  EXPECT_DOUBLE_EQ(UnionOfBallsCoverage(balls, box, 2000, &rng), 0.0);
}

TEST(VolumeTest, DiskAreaEstimate) {
  Rng rng(4);
  BoxDomain box{2, 0.0, 1.0};
  // Disk radius 0.5 centered mid-box: area π/4 ≈ 0.785.
  std::vector<Ball> balls = {Ball(Vector{0.5, 0.5}, 0.5)};
  const double coverage = UnionOfBallsCoverage(balls, box, 40000, &rng);
  EXPECT_NEAR(coverage, M_PI / 4.0, 0.02);
}

TEST(VolumeTest, HullCoverageOfSquare) {
  Rng rng(5);
  BoxDomain box{2, 0.0, 1.0};
  // Hull = lower-left triangle of the unit square: area 1/2.
  std::vector<Vector> pts = {Vector{0.0, 0.0}, Vector{1.0, 0.0},
                             Vector{0.0, 1.0}};
  const double coverage = ConvexHullCoverage(pts, box, 4000, &rng);
  EXPECT_NEAR(coverage, 0.5, 0.05);
}

TEST(VolumeTest, MoreBallsNeverLessCoverage) {
  Rng rng1(6), rng2(6);  // identical sample streams
  BoxDomain box{3, 0.0, 1.0};
  std::vector<Ball> few = {Ball(Vector{0.2, 0.2, 0.2}, 0.2)};
  std::vector<Ball> more = few;
  more.push_back(Ball(Vector{0.7, 0.7, 0.7}, 0.25));
  const double c_few = UnionOfBallsCoverage(few, box, 5000, &rng1);
  const double c_more = UnionOfBallsCoverage(more, box, 5000, &rng2);
  EXPECT_GE(c_more, c_few);
}

}  // namespace
}  // namespace sgm
