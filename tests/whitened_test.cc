// Tests of shape-sensitive (whitened) monitoring: value preservation,
// conservative geometry, scale estimation, and the end-to-end FP benefit on
// an anisotropic workload (Sharfman et al. [21]'s motivation).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/stream.h"
#include "data/whitened_stream.h"
#include "functions/l2_norm.h"
#include "functions/linear.h"
#include "functions/whitened_function.h"
#include "gm/gm.h"
#include "sim/network.h"

namespace sgm {
namespace {

TEST(WhitenedFunctionTest, ValuePreserved) {
  auto inner = std::make_unique<L2Norm>();
  const WhitenedFunction f(std::move(inner), Vector{2.0, 0.5});
  // z = (2, 1) ↦ v = (1, 2): f = ‖v‖ = √5.
  EXPECT_NEAR(f.Value(Vector{2.0, 1.0}), std::sqrt(5.0), 1e-12);
}

TEST(WhitenedFunctionTest, GradientChainRule) {
  auto inner = std::make_unique<LinearFunction>(Vector{3.0, 5.0});
  const WhitenedFunction f(std::move(inner), Vector{2.0, 0.5});
  // f(z) = 3·z0/2 + 5·z1/0.5 → ∇ = (1.5, 10).
  const Vector grad = f.Gradient(Vector{1.0, 1.0});
  EXPECT_NEAR(grad[0], 1.5, 1e-9);
  EXPECT_NEAR(grad[1], 10.0, 1e-9);
}

TEST(WhitenedFunctionTest, EnclosureIsConservative) {
  auto inner = std::make_unique<L2Norm>();
  const WhitenedFunction f(std::move(inner), Vector{4.0, 0.25});
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    Vector c(2);
    c[0] = rng.NextDouble(-4.0, 4.0);
    c[1] = rng.NextDouble(-4.0, 4.0);
    const Ball ball(c, rng.NextDouble(0.05, 1.0));
    const Interval range = f.RangeOverBall(ball);
    for (int s = 0; s < 30; ++s) {
      Vector direction{rng.NextGaussian(), rng.NextGaussian()};
      Vector z = c;
      z.Axpy(ball.radius() * rng.NextDouble() / direction.Norm(), direction);
      const double value = f.Value(z);
      EXPECT_GE(value, range.lo - 1e-9);
      EXPECT_LE(value, range.hi + 1e-9);
    }
  }
}

TEST(WhitenedFunctionTest, SurfaceDistanceConservativeLowerBound) {
  auto inner = std::make_unique<L2Norm>();
  const WhitenedFunction f(std::move(inner), Vector{2.0, 2.0});
  // Uniform scale 2: the true z-space distance from z = (2,0) (v = (1,0))
  // to {‖v‖ = 3} is 4. The probed enclosure must return a positive lower
  // bound that never exceeds the truth.
  const Vector z{2.0, 0.0};
  const double distance = f.DistanceToSurface(z, 3.0);
  EXPECT_GT(distance, 1.0);
  EXPECT_LE(distance, 4.0 + 1e-6);
}

TEST(WhitenedStreamTest, AppliesScales) {
  // A tiny deterministic source via the CSV-style in-memory frames.
  class TwoFrameSource final : public StreamSource {
   public:
    std::string name() const override { return "two"; }
    int num_sites() const override { return 1; }
    std::size_t dim() const override { return 2; }
    void Advance(std::vector<Vector>* locals) override {
      locals->assign(1, Vector{1.0, 10.0});
    }
    double max_step_norm() const override { return 1.0; }
  } inner;

  WhitenedStream stream(&inner, Vector{3.0, 0.1});
  std::vector<Vector> locals;
  stream.Advance(&locals);
  EXPECT_EQ(locals[0], (Vector{3.0, 1.0}));
  EXPECT_DOUBLE_EQ(stream.max_step_norm(), 3.0);
}

// Anisotropic drift source: coordinate 0 is the signal (slow), coordinate 1
// is irrelevant heavy noise. The monitored function only reads coordinate 0.
class AnisoSource final : public StreamSource {
 public:
  explicit AnisoSource(int num_sites, std::uint64_t seed = 8)
      : num_sites_(num_sites), rng_(seed), state_(num_sites, Vector(2)) {}

  std::string name() const override { return "aniso"; }
  int num_sites() const override { return num_sites_; }
  std::size_t dim() const override { return 2; }
  void Advance(std::vector<Vector>* locals) override {
    locals->resize(num_sites_);
    for (int i = 0; i < num_sites_; ++i) {
      state_[i][0] += 0.01 * rng_.NextGaussian();   // quiet signal coord
      state_[i][1] = 3.0 * rng_.NextGaussian();     // loud irrelevant coord
      (*locals)[i] = state_[i];
    }
  }
  double max_step_norm() const override { return 20.0; }

 private:
  int num_sites_;
  Rng rng_;
  std::vector<Vector> state_;
};

TEST(WhitenedTest, ScaleEstimationSeparatesCoordinates) {
  AnisoSource calibration(50);
  const Vector scales = WhitenedStream::EstimateScales(&calibration, 50);
  // The noisy coordinate must be scaled down relative to the quiet one.
  EXPECT_GT(scales[0], 10.0 * scales[1]);
}

TEST(WhitenedTest, WhiteningCutsGmFalsePositivesOnAnisotropy) {
  // f reads only the quiet coordinate; the loud one merely inflates GM's
  // balls. Whitening shrinks the irrelevant axis and with it the FP rate.
  const LinearFunction f(Vector{1.0, 0.0});
  const double threshold = 1.0;
  const long cycles = 400;
  const int n = 30;

  long plain_fps;
  {
    AnisoSource source(n);
    GeometricMonitor gm(f, threshold, source.max_step_norm());
    plain_fps = Simulate(&source, &gm, cycles).metrics.false_positives();
  }

  long whitened_fps;
  {
    AnisoSource calibration(n, 8);
    const Vector scales = WhitenedStream::EstimateScales(&calibration, 100);
    AnisoSource source(n);
    WhitenedStream whitened(&source, scales);
    WhitenedFunction wf(std::make_unique<LinearFunction>(Vector{1.0, 0.0}),
                        scales);
    GeometricMonitor gm(wf, threshold, whitened.max_step_norm());
    whitened_fps =
        Simulate(&whitened, &gm, cycles).metrics.false_positives();
  }
  EXPECT_LT(whitened_fps, plain_fps);
}

}  // namespace
}  // namespace sgm
