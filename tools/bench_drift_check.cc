// Compares a freshly generated BENCH_reliability.json against the committed
// baseline and fails (exit 1) when any paper-comparable cost column
// regresses by more than the tolerance — the CI guard that keeps the
// runtime's protocol traffic anchored to the paper's cost model.
//
//   bench_drift_check BASELINE CURRENT [--tolerance=0.10]
//                     [--columns=a,b,c]
//
// Checked columns (per cell, matched on seed × drop): paper_messages,
// paper_bytes, full_syncs, partial_resolutions. A *regression* is an
// increase beyond baseline × (1 + tolerance); columns with a baseline of 0
// fail on any nonzero current value. Decreases are reported as info but
// pass — cheaper is fine, the baseline should then be refreshed.
// Transport-layer columns (retransmissions, acks, ...) are fault-model
// internals and deliberately not gated here.
//
// `--columns=` replaces the default column set — the same binary then
// gates other benchmark files (e.g. BENCH_chaos.json's
// reconnect_ms_p50,reconnect_ms_p99 with a wall-clock-sized tolerance).
//
// Schema evolution: a column absent from a baseline cell is *warned about
// and skipped*, not failed — an old baseline must not block a PR that adds
// a new benchmark column (refresh the baseline to start gating it). A
// schema_version mismatch between the files is likewise a warning only.
//
// A baseline cell missing from the current file fails by default (silently
// dropping coverage must be loud). `--allow-missing-cells` downgrades that
// to a warning, for gating a deliberate subset sweep against a fuller
// committed baseline (the scale-bench CI job re-runs only the site counts
// cheap enough for CI hardware).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

const char* const kPaperColumns[] = {"paper_messages", "paper_bytes",
                                     "full_syncs", "partial_resolutions"};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string CellKey(const sgm::JsonValue& run) {
  char key[64];
  std::snprintf(key, sizeof(key), "seed=%ld drop=%.2f",
                static_cast<long>(run.NumberOr("seed", -1)),
                run.NumberOr("drop", -1.0));
  return key;
}

const sgm::JsonValue* FindCell(const std::vector<sgm::JsonValue>& runs,
                               const std::string& key) {
  for (const sgm::JsonValue& run : runs) {
    if (CellKey(run) == key) return &run;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double tolerance = 0.10;
  bool allow_missing_cells = false;
  std::vector<std::string> columns(std::begin(kPaperColumns),
                                   std::end(kPaperColumns));
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-missing-cells") {
      allow_missing_cells = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(arg.c_str() + std::strlen("--tolerance="));
    } else if (arg.rfind("--columns=", 0) == 0) {
      columns.clear();
      std::string list = arg.substr(std::strlen("--columns="));
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string column =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!column.empty()) columns.push_back(column);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (columns.empty()) {
        std::fprintf(stderr, "--columns= needs at least one column\n");
        return 2;
      }
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_drift_check BASELINE CURRENT"
                 " [--tolerance=0.10] [--columns=a,b,c]"
                 " [--allow-missing-cells]\n");
    return 2;
  }

  std::string baseline_text;
  std::string current_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
    return 1;
  }
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "cannot read %s\n", current_path.c_str());
    return 1;
  }

  auto baseline = sgm::JsonValue::Parse(baseline_text);
  auto current = sgm::JsonValue::Parse(current_text);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 (!baseline.ok() ? baseline : current)
                     .status()
                     .message()
                     .c_str());
    return 1;
  }
  const sgm::JsonValue* baseline_runs = baseline.ValueOrDie().Find("runs");
  const sgm::JsonValue* current_runs = current.ValueOrDie().Find("runs");
  if (baseline_runs == nullptr || !baseline_runs->is_array() ||
      current_runs == nullptr || !current_runs->is_array()) {
    std::fprintf(stderr, "missing \"runs\" array\n");
    return 1;
  }
  const long baseline_schema =
      static_cast<long>(baseline.ValueOrDie().NumberOr("schema_version", 0));
  const long current_schema =
      static_cast<long>(current.ValueOrDie().NumberOr("schema_version", 0));
  if (baseline_schema != current_schema) {
    std::printf("warn  schema_version differs: baseline %ld, current %ld"
                " (columns absent from the baseline are skipped)\n",
                baseline_schema, current_schema);
  }

  int failures = 0;
  long cells_checked = 0;
  for (const sgm::JsonValue& base_cell : baseline_runs->array()) {
    const std::string key = CellKey(base_cell);
    const sgm::JsonValue* cur_cell = FindCell(current_runs->array(), key);
    if (cur_cell == nullptr) {
      if (allow_missing_cells) {
        std::printf("warn  [%s] cell missing from current run — skipped"
                    " (--allow-missing-cells)\n",
                    key.c_str());
      } else {
        std::printf("FAIL  [%s] cell missing from current run\n",
                    key.c_str());
        ++failures;
      }
      continue;
    }
    ++cells_checked;
    for (const std::string& column : columns) {
      if (base_cell.Find(column) == nullptr) {
        // Pre-column baseline: nothing to compare against. Warn so the
        // refresh is visible, but never fail a PR on an old baseline.
        std::printf("warn  [%s] %s absent from baseline — skipped (refresh"
                    " baseline to gate it)\n",
                    key.c_str(), column.c_str());
        continue;
      }
      const double base = base_cell.NumberOr(column, 0.0);
      const double cur = cur_cell->NumberOr(column, 0.0);
      const double limit = base * (1.0 + tolerance);
      if (cur > limit && cur > base) {  // base==0 → any increase fails
        std::printf("FAIL  [%s] %s: %g -> %g (limit %g, +%.1f%%)\n",
                    key.c_str(), column.c_str(), base, cur, limit,
                    base > 0.0 ? 100.0 * (cur - base) / base : 100.0);
        ++failures;
      } else if (cur < base) {
        std::printf("info  [%s] %s improved: %g -> %g (refresh"
                    " baseline)\n",
                    key.c_str(), column.c_str(), base, cur);
      }
    }
  }
  if (current_runs->array().size() != baseline_runs->array().size()) {
    std::printf("note  cell count changed: %zu baseline, %zu current\n",
                baseline_runs->array().size(), current_runs->array().size());
  }

  if (failures > 0) {
    std::printf("drift check FAILED: %d regression(s) over %.0f%% across"
                " %ld cells\n",
                failures, 100.0 * tolerance, cells_checked);
    return 1;
  }
  std::printf("drift check OK: %ld cells within %.0f%% of baseline\n",
              cells_checked, 100.0 * tolerance);
  return 0;
}
