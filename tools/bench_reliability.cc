// Reliability-layer cost baseline: runs the message-passing runtime (SGM,
// L∞-distance, Jester-like workload) over a fixed seed × drop-rate matrix
// and emits one JSON record per cell — paper-comparable traffic, transport
// totals (retransmissions/acks included), the transport-vs-paper overhead
// split (computed from the telemetry registry snapshot), sync counts,
// reliability-layer activity, and wall time.
//
// The committed BENCH_reliability.json at the repo root is the output of
//   bench_reliability > BENCH_reliability.json
// All counters are seed-deterministic, so a diff in anything except
// wall_time_ms and the full_sync_ns_p* latency quantiles (both wall-clock
// measurements) is a behaviour change and should be reviewed as one;
// tools/bench_drift_check compares the paper-comparable columns against the
// committed baseline and fails CI on >10% regression. The top-level
// schema_version increments whenever columns are added or renamed, so the
// drift check can warn (not fail) across schema generations.
//
// Flags:
//   --metrics-out=PATH  write the last cell's full metric-registry JSON
//   --trace=PATH        write the whole matrix's trace (JSONL, one event
//                       per line; cells delimited by cell_begin events)
//   --chaos             run the socket-runtime recovery matrix instead: an
//                       in-process loopback deployment per seed with
//                       injected connection resets, measuring
//                       time-to-reconverge (p50/p99 across resets) and the
//                       paper-message overhead of the rejoin handshake
//                       against a fault-free twin. Committed baseline:
//                       bench_reliability --chaos > BENCH_chaos.json
//                       (reconnect_ms_* and wall_time_ms are wall-clock;
//                       everything else is seed-deterministic).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "data/jester_like.h"
#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "obs/telemetry.h"
#include "runtime/coordinator_server.h"
#include "runtime/driver.h"
#include "runtime/site_client.h"

namespace {

struct Cell {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  int max_delay_rounds = 0;
};

constexpr int kNumSites = 24;
constexpr long kCycles = 300;
/// Bump when per-cell columns are added/renamed (see header comment).
/// 1 = the seed layout; 2 = + schema_version, full_sync_ns_p50/p95/p99.
constexpr long kSchemaVersion = 2;
constexpr std::size_t kNumBuckets = 8;
constexpr std::size_t kWindow = 50;
constexpr double kThreshold = 5.0;

/// Runs one cell with a fresh Telemetry and prints its JSON record. The
/// per-cell cost split is read back from the metric registry — the same
/// snapshot a deployment's metrics endpoint would serve — rather than from
/// the component accessors, exercising the publication path end to end.
/// `trace` (nullable) collects the cell's protocol events.
void RunCell(const Cell& cell, bool first, sgm::TraceLog* trace,
             sgm::Telemetry* telemetry) {
  sgm::JesterLikeConfig workload;
  workload.num_sites = kNumSites;
  workload.window = kWindow;
  workload.num_buckets = kNumBuckets;
  workload.seed = sgm::DeriveSeed(cell.seed, 101);

  sgm::JesterLikeGenerator source(workload);
  const sgm::LInfDistance function{sgm::Vector(kNumBuckets)};

  sgm::RuntimeConfig node;
  node.threshold = kThreshold;
  node.max_step_norm = source.max_step_norm();
  node.drift_norm_cap = source.max_drift_norm();
  node.seed = sgm::DeriveSeed(cell.seed, 202);
  node.telemetry = telemetry;

  sgm::SimTransportConfig transport;
  transport.seed = sgm::DeriveSeed(cell.seed, 303);
  transport.drop_probability = cell.drop;
  transport.duplicate_probability = cell.duplicate;
  transport.max_delay_rounds = cell.max_delay_rounds;

  sgm::RuntimeDriver driver(kNumSites, function, node, transport);

  const auto start = std::chrono::steady_clock::now();
  std::vector<sgm::Vector> locals;
  source.Advance(&locals);
  driver.Initialize(locals);
  for (long t = 1; t <= kCycles; ++t) {
    source.Advance(&locals);
    driver.Tick(locals);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // Every counter below comes from the published registry snapshot.
  sgm::MetricRegistry& reg = telemetry->registry;
  const long paper_messages = reg.GetCounter("transport.paper_messages")->value();
  const double paper_bytes = reg.GetGauge("transport.paper_bytes")->value();
  const long total_messages = reg.GetCounter("transport.total_messages")->value();
  const double total_bytes = reg.GetGauge("transport.total_bytes")->value();
  const sgm::CoordinatorNode& coordinator = driver.coordinator();
  std::printf(
      "%s  {\"seed\": %llu, \"drop\": %.2f, \"duplicate\": %.2f,"
      " \"max_delay_rounds\": %d, \"sites\": %d, \"cycles\": %ld,\n"
      "   \"paper_messages\": %ld, \"paper_bytes\": %.0f,"
      " \"transport_messages\": %ld, \"transport_bytes\": %.0f,\n"
      "   \"overhead_messages\": %ld, \"overhead_bytes\": %.0f,"
      " \"overhead_message_ratio\": %.4f,\n"
      "   \"full_syncs\": %ld, \"degraded_syncs\": %ld,"
      " \"partial_resolutions\": %ld,\n"
      "   \"retransmissions\": %ld, \"acks\": %ld,"
      " \"duplicates_suppressed\": %ld, \"give_ups\": %ld,"
      " \"rejoins_granted\": %ld, \"stale_epoch_drops\": %ld,\n"
      "   \"full_sync_ns_p50\": %.0f, \"full_sync_ns_p95\": %.0f,"
      " \"full_sync_ns_p99\": %.0f, \"wall_time_ms\": %.1f}",
      first ? "" : ",\n",
      static_cast<unsigned long long>(cell.seed), cell.drop, cell.duplicate,
      cell.max_delay_rounds, kNumSites, kCycles, paper_messages, paper_bytes,
      total_messages, total_bytes, total_messages - paper_messages,
      total_bytes - paper_bytes,
      paper_messages > 0
          ? static_cast<double>(total_messages - paper_messages) /
                static_cast<double>(paper_messages)
          : 0.0,
      coordinator.full_syncs(), coordinator.degraded_syncs(),
      coordinator.partial_resolutions(),
      reg.GetCounter("transport.retransmissions")->value(),
      reg.GetCounter("transport.acks_sent")->value(),
      reg.GetCounter("transport.duplicates_suppressed")->value(),
      reg.GetCounter("transport.give_ups")->value(),
      reg.GetCounter("coordinator.rejoins_granted")->value(),
      reg.GetCounter("coordinator.stale_epoch_drops")->value() +
          reg.GetCounter("site.stale_epoch_drops")->value(),
      reg.GetHistogram("coordinator.full_sync_ns")->Quantile(0.50),
      reg.GetHistogram("coordinator.full_sync_ns")->Quantile(0.95),
      reg.GetHistogram("coordinator.full_sync_ns")->Quantile(0.99),
      wall_ms);

  if (trace != nullptr) {
    // Append this cell's events to the matrix-wide log (each cell's own
    // TraceLog restarts ts at 0; the cell_begin marker delimits them).
    trace->Emit("run", "cell_begin", -1,
                {{"seed", static_cast<std::int64_t>(cell.seed)},
                 {"drop", cell.drop}});
    for (const sgm::TraceEvent& event : telemetry->trace.events()) {
      trace->Emit(event.cat, event.name, event.actor, event.args);
    }
  }
}

// ── Socket-runtime recovery matrix (--chaos) ─────────────────────────────

constexpr int kChaosSites = 4;
constexpr long kChaosCycles = 200;
constexpr int kChaosResets = 8;
// Straggler injection (schema v2): one-shot processing stalls long enough
// to span several barrier deadlines, driving the lagging verdict and the
// quarantine → catch-up → rejoin loop whose latency this bench records.
constexpr int kChaosStalls = 3;
constexpr long kChaosStallMs = 120;
constexpr long kChaosBarrierDeadlineMs = 25;
constexpr std::size_t kChaosSendQueueFrames = 1024;
// Pace cycles so a stalled site's recovery lands inside the run (an
// unpaced loopback retires all 200 cycles before a 120 ms stall ends).
constexpr long kChaosPaceMs = 2;
constexpr long kChaosSchemaVersion = 2;

sgm::RuntimeConfig ChaosNodeConfig(std::uint64_t seed,
                                   const sgm::SyntheticDriftGenerator& probe) {
  sgm::RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = probe.max_step_norm();
  config.drift_norm_cap = probe.max_drift_norm();
  config.seed = sgm::DeriveSeed(seed, 404);
  return config;
}

sgm::SyntheticDriftConfig ChaosWorkloadConfig(std::uint64_t seed) {
  sgm::SyntheticDriftConfig config;
  config.num_sites = kChaosSites;
  config.dim = 4;
  config.seed = sgm::DeriveSeed(seed, 505);
  config.global_period = 60;
  config.global_amplitude = 2.5;
  return config;
}

struct ChaosRun {
  bool ok = false;
  long resets_injected = 0;
  long stalls_injected = 0;
  long site_rehellos = 0;
  long reconnects = 0;
  long paper_messages = 0;
  long full_syncs = 0;
  long degraded_cycles = 0;
  long lag_quarantines = 0;
  std::vector<double> reconnect_ms;  ///< injection → observed re-hello
  /// Lagging verdict → lagging_sites back to 0, in coordinator cycles:
  /// the bounded-staleness window a quarantined straggler lives through.
  std::vector<double> quarantine_recovery_cycles;
  double wall_ms = 0.0;
};

/// One in-process loopback deployment: a CoordinatorServer plus kChaosSites
/// SiteClient threads. With `inject`, the main thread severs one site's
/// connection every ~20 cycles and measures the wall time until the
/// coordinator sees the matching re-hello (sampled at cycle granularity —
/// the same resolution an operator's per-cycle metrics would give).
ChaosRun RunChaosDeployment(std::uint64_t seed, bool inject) {
  using Clock = std::chrono::steady_clock;
  ChaosRun run;
  const sgm::SyntheticDriftConfig workload = ChaosWorkloadConfig(seed);
  sgm::SyntheticDriftGenerator probe(workload);
  const sgm::L2Norm norm;

  sgm::CoordinatorServerConfig server_config;
  server_config.num_sites = kChaosSites;
  server_config.runtime = ChaosNodeConfig(seed, probe);
  // Straggler tolerance on for both twins: the fault-free baseline proves
  // the deadline path is inert without stalls (0 degraded cycles).
  server_config.barrier_deadline_ms = kChaosBarrierDeadlineMs;
  server_config.send_queue_frames = kChaosSendQueueFrames;
  sgm::CoordinatorServer server(norm, server_config);
  if (!server.Listen()) return run;

  std::vector<std::unique_ptr<sgm::SiteClient>> clients;
  for (int id = 0; id < kChaosSites; ++id) {
    sgm::SiteClientConfig config;
    config.site_id = id;
    config.num_sites = kChaosSites;
    config.port = server.port();
    config.runtime = ChaosNodeConfig(seed, probe);
    config.runtime.socket_retry.max_attempts = 200;
    config.runtime.socket_retry.base_backoff_ms = 1;
    config.runtime.socket_retry.max_backoff_ms = 20;
    config.runtime.socket_retry.jitter_seed = sgm::DeriveSeed(seed, 606);
    config.max_reconnects = kChaosResets + 4;
    clients.push_back(std::make_unique<sgm::SiteClient>(norm, config));
  }

  std::atomic<bool> sites_ok{true};
  std::vector<std::thread> threads;
  threads.reserve(kChaosSites);
  for (int id = 0; id < kChaosSites; ++id) {
    threads.emplace_back([id, &clients, &workload, &sites_ok] {
      sgm::SyntheticDriftGenerator generator(workload);
      if (!clients[id]->Connect()) {
        sites_ok.store(false);
        return;
      }
      std::vector<sgm::Vector> locals;
      long advanced = 0;
      if (!clients[id]->Run([&](long cycle) {
            while (advanced <= cycle) {
              generator.Advance(&locals);
              ++advanced;
            }
            return locals[id];
          })) {
        sites_ok.store(false);
      }
    });
  }

  const auto start = Clock::now();
  bool cycles_ok = server.WaitForSites();
  long seen_rehellos = 0;
  bool awaiting = false;
  Clock::time_point injected_at{};
  long seen_quarantines = 0;
  long quarantined_at_cycle = -1;
  for (long cycle = 0; cycles_ok && cycle <= kChaosCycles; ++cycle) {
    cycles_ok = server.RunCycle();
    std::this_thread::sleep_for(std::chrono::milliseconds(kChaosPaceMs));
    if (awaiting && server.SiteRehellos() > seen_rehellos) {
      run.reconnect_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    injected_at)
              .count());
      seen_rehellos = server.SiteRehellos();
      awaiting = false;
    }
    const sgm::CoordinatorServer::Health health = server.GetHealth();
    if (health.lag_quarantines > seen_quarantines) {
      seen_quarantines = health.lag_quarantines;
      quarantined_at_cycle = cycle;
    }
    if (quarantined_at_cycle >= 0 && health.lagging_sites == 0) {
      run.quarantine_recovery_cycles.push_back(
          static_cast<double>(cycle - quarantined_at_cycle));
      quarantined_at_cycle = -1;
    }
    if (inject && !awaiting && run.resets_injected < kChaosResets &&
        cycle % 20 == 10) {
      const int victim =
          static_cast<int>(run.resets_injected) % kChaosSites;
      injected_at = Clock::now();
      clients[victim]->InjectConnectionReset();
      ++run.resets_injected;
      awaiting = true;
    }
    // Stall a different site than the reset rotation is touching: the
    // sleep spans several barrier deadlines, so the coordinator degrades,
    // quarantines the straggler, and re-anchors it once it catches up.
    if (inject && run.stalls_injected < kChaosStalls &&
        cycle % 60 == 15) {
      const int victim =
          static_cast<int>(run.stalls_injected + 1) % kChaosSites;
      clients[victim]->InjectProcessingStall(kChaosStallMs);
      ++run.stalls_injected;
    }
  }
  const sgm::CoordinatorServer::Health final_health = server.GetHealth();
  run.degraded_cycles = final_health.degraded_cycles;
  run.lag_quarantines = final_health.lag_quarantines;
  server.Shutdown();
  for (std::thread& t : threads) t.join();
  run.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();

  run.ok = cycles_ok && sites_ok.load();
  run.site_rehellos = server.SiteRehellos();
  run.paper_messages = server.PaperMessages();
  run.full_syncs = server.FullSyncs();
  for (const auto& client : clients) run.reconnects += client->reconnects();
  return run;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

int RunChaosMatrix() {
  std::printf("{\"benchmark\": \"socket_chaos\", \"schema_version\": %ld,"
              " \"workload\": \"synthetic/l2\",\n \"runs\": [\n",
              kChaosSchemaVersion);
  const std::uint64_t kSeeds[] = {1, 2, 3};
  bool first = true;
  bool all_ok = true;
  for (const std::uint64_t seed : kSeeds) {
    // The fault-free twin isolates the rejoin handshake's paper-message
    // cost: same seeds, same schedule, no injected resets.
    const ChaosRun baseline = RunChaosDeployment(seed, /*inject=*/false);
    const ChaosRun faulted = RunChaosDeployment(seed, /*inject=*/true);
    all_ok = all_ok && baseline.ok && faulted.ok;
    const double overhead =
        baseline.paper_messages > 0
            ? static_cast<double>(faulted.paper_messages -
                                  baseline.paper_messages) /
                  static_cast<double>(baseline.paper_messages)
            : 0.0;
    std::printf(
        "%s  {\"seed\": %llu, \"sites\": %d, \"cycles\": %ld,"
        " \"resets_injected\": %ld, \"stalls_injected\": %ld,\n"
        "   \"site_rehellos\": %ld, \"site_reconnects\": %ld,"
        " \"reconnect_ms_p50\": %.2f, \"reconnect_ms_p99\": %.2f,\n"
        "   \"degraded_cycles\": %ld, \"baseline_degraded_cycles\": %ld,"
        " \"lag_quarantines\": %ld,\n"
        "   \"quarantine_recovery_cycles_p50\": %.1f,"
        " \"quarantine_recovery_cycles_p99\": %.1f,\n"
        "   \"paper_messages\": %ld, \"baseline_paper_messages\": %ld,"
        " \"rejoin_message_overhead_ratio\": %.4f,\n"
        "   \"full_syncs\": %ld, \"baseline_full_syncs\": %ld,"
        " \"wall_time_ms\": %.1f}",
        first ? "" : ",\n", static_cast<unsigned long long>(seed),
        kChaosSites, kChaosCycles, faulted.resets_injected,
        faulted.stalls_injected, faulted.site_rehellos, faulted.reconnects,
        Percentile(faulted.reconnect_ms, 0.50),
        Percentile(faulted.reconnect_ms, 0.99), faulted.degraded_cycles,
        baseline.degraded_cycles, faulted.lag_quarantines,
        Percentile(faulted.quarantine_recovery_cycles, 0.50),
        Percentile(faulted.quarantine_recovery_cycles, 0.99),
        faulted.paper_messages, baseline.paper_messages, overhead,
        faulted.full_syncs, baseline.full_syncs, faulted.wall_ms);
    first = false;
  }
  std::printf("\n]}\n");
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace="));
    } else if (arg == "--chaos") {
      chaos = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (chaos) return RunChaosMatrix();

  // Drop-rate tiers of the acceptance matrix: clean, moderate, hostile.
  // Duplicates/delays scale with the drop tier, like the stress profiles.
  const double kDrops[] = {0.0, 0.10, 0.30};
  const std::uint64_t kSeeds[] = {1, 2, 3};

  sgm::TraceLog matrix_trace;
  // The final (hostile) cell's registry survives the loop for --metrics-out.
  std::unique_ptr<sgm::Telemetry> last_cell_telemetry;

  std::printf("{\"benchmark\": \"reliability_layer\","
              " \"schema_version\": %ld,"
              " \"workload\": \"jester_like/linf\",\n \"runs\": [\n",
              kSchemaVersion);
  bool first = true;
  for (const double drop : kDrops) {
    for (const std::uint64_t seed : kSeeds) {
      Cell cell;
      cell.seed = seed;
      cell.drop = drop;
      cell.duplicate = drop > 0.0 ? 0.05 : 0.0;
      cell.max_delay_rounds = drop > 0.0 ? 2 : 0;
      auto telemetry = std::make_unique<sgm::Telemetry>();
      RunCell(cell, first, trace_out.empty() ? nullptr : &matrix_trace,
              telemetry.get());
      first = false;
      last_cell_telemetry = std::move(telemetry);
    }
  }
  std::printf("\n]}\n");

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    last_cell_telemetry->WriteMetricsJson(out);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    matrix_trace.WriteJsonl(out);
  }
  return 0;
}
