// Reliability-layer cost baseline: runs the message-passing runtime (SGM,
// L∞-distance, Jester-like workload) over a fixed seed × drop-rate matrix
// and emits one JSON record per cell — paper-comparable traffic, transport
// totals (retransmissions/acks included), the transport-vs-paper overhead
// split (computed from the telemetry registry snapshot), sync counts,
// reliability-layer activity, and wall time.
//
// The committed BENCH_reliability.json at the repo root is the output of
//   bench_reliability > BENCH_reliability.json
// All counters are seed-deterministic, so a diff in anything except
// wall_time_ms and the full_sync_ns_p* latency quantiles (both wall-clock
// measurements) is a behaviour change and should be reviewed as one;
// tools/bench_drift_check compares the paper-comparable columns against the
// committed baseline and fails CI on >10% regression. The top-level
// schema_version increments whenever columns are added or renamed, so the
// drift check can warn (not fail) across schema generations.
//
// Flags:
//   --metrics-out=PATH  write the last cell's full metric-registry JSON
//   --trace=PATH        write the whole matrix's trace (JSONL, one event
//                       per line; cells delimited by cell_begin events)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "data/jester_like.h"
#include "functions/linf_distance.h"
#include "obs/telemetry.h"
#include "runtime/driver.h"

namespace {

struct Cell {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  int max_delay_rounds = 0;
};

constexpr int kNumSites = 24;
constexpr long kCycles = 300;
/// Bump when per-cell columns are added/renamed (see header comment).
/// 1 = the seed layout; 2 = + schema_version, full_sync_ns_p50/p95/p99.
constexpr long kSchemaVersion = 2;
constexpr std::size_t kNumBuckets = 8;
constexpr std::size_t kWindow = 50;
constexpr double kThreshold = 5.0;

/// Runs one cell with a fresh Telemetry and prints its JSON record. The
/// per-cell cost split is read back from the metric registry — the same
/// snapshot a deployment's metrics endpoint would serve — rather than from
/// the component accessors, exercising the publication path end to end.
/// `trace` (nullable) collects the cell's protocol events.
void RunCell(const Cell& cell, bool first, sgm::TraceLog* trace,
             sgm::Telemetry* telemetry) {
  sgm::JesterLikeConfig workload;
  workload.num_sites = kNumSites;
  workload.window = kWindow;
  workload.num_buckets = kNumBuckets;
  workload.seed = sgm::DeriveSeed(cell.seed, 101);

  sgm::JesterLikeGenerator source(workload);
  const sgm::LInfDistance function{sgm::Vector(kNumBuckets)};

  sgm::RuntimeConfig node;
  node.threshold = kThreshold;
  node.max_step_norm = source.max_step_norm();
  node.drift_norm_cap = source.max_drift_norm();
  node.seed = sgm::DeriveSeed(cell.seed, 202);
  node.telemetry = telemetry;

  sgm::SimTransportConfig transport;
  transport.seed = sgm::DeriveSeed(cell.seed, 303);
  transport.drop_probability = cell.drop;
  transport.duplicate_probability = cell.duplicate;
  transport.max_delay_rounds = cell.max_delay_rounds;

  sgm::RuntimeDriver driver(kNumSites, function, node, transport);

  const auto start = std::chrono::steady_clock::now();
  std::vector<sgm::Vector> locals;
  source.Advance(&locals);
  driver.Initialize(locals);
  for (long t = 1; t <= kCycles; ++t) {
    source.Advance(&locals);
    driver.Tick(locals);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // Every counter below comes from the published registry snapshot.
  sgm::MetricRegistry& reg = telemetry->registry;
  const long paper_messages = reg.GetCounter("transport.paper_messages")->value();
  const double paper_bytes = reg.GetGauge("transport.paper_bytes")->value();
  const long total_messages = reg.GetCounter("transport.total_messages")->value();
  const double total_bytes = reg.GetGauge("transport.total_bytes")->value();
  const sgm::CoordinatorNode& coordinator = driver.coordinator();
  std::printf(
      "%s  {\"seed\": %llu, \"drop\": %.2f, \"duplicate\": %.2f,"
      " \"max_delay_rounds\": %d, \"sites\": %d, \"cycles\": %ld,\n"
      "   \"paper_messages\": %ld, \"paper_bytes\": %.0f,"
      " \"transport_messages\": %ld, \"transport_bytes\": %.0f,\n"
      "   \"overhead_messages\": %ld, \"overhead_bytes\": %.0f,"
      " \"overhead_message_ratio\": %.4f,\n"
      "   \"full_syncs\": %ld, \"degraded_syncs\": %ld,"
      " \"partial_resolutions\": %ld,\n"
      "   \"retransmissions\": %ld, \"acks\": %ld,"
      " \"duplicates_suppressed\": %ld, \"give_ups\": %ld,"
      " \"rejoins_granted\": %ld, \"stale_epoch_drops\": %ld,\n"
      "   \"full_sync_ns_p50\": %.0f, \"full_sync_ns_p95\": %.0f,"
      " \"full_sync_ns_p99\": %.0f, \"wall_time_ms\": %.1f}",
      first ? "" : ",\n",
      static_cast<unsigned long long>(cell.seed), cell.drop, cell.duplicate,
      cell.max_delay_rounds, kNumSites, kCycles, paper_messages, paper_bytes,
      total_messages, total_bytes, total_messages - paper_messages,
      total_bytes - paper_bytes,
      paper_messages > 0
          ? static_cast<double>(total_messages - paper_messages) /
                static_cast<double>(paper_messages)
          : 0.0,
      coordinator.full_syncs(), coordinator.degraded_syncs(),
      coordinator.partial_resolutions(),
      reg.GetCounter("transport.retransmissions")->value(),
      reg.GetCounter("transport.acks_sent")->value(),
      reg.GetCounter("transport.duplicates_suppressed")->value(),
      reg.GetCounter("transport.give_ups")->value(),
      reg.GetCounter("coordinator.rejoins_granted")->value(),
      reg.GetCounter("coordinator.stale_epoch_drops")->value() +
          reg.GetCounter("site.stale_epoch_drops")->value(),
      reg.GetHistogram("coordinator.full_sync_ns")->Quantile(0.50),
      reg.GetHistogram("coordinator.full_sync_ns")->Quantile(0.95),
      reg.GetHistogram("coordinator.full_sync_ns")->Quantile(0.99),
      wall_ms);

  if (trace != nullptr) {
    // Append this cell's events to the matrix-wide log (each cell's own
    // TraceLog restarts ts at 0; the cell_begin marker delimits them).
    trace->Emit("run", "cell_begin", -1,
                {{"seed", static_cast<std::int64_t>(cell.seed)},
                 {"drop", cell.drop}});
    for (const sgm::TraceEvent& event : telemetry->trace.events()) {
      trace->Emit(event.cat, event.name, event.actor, event.args);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Drop-rate tiers of the acceptance matrix: clean, moderate, hostile.
  // Duplicates/delays scale with the drop tier, like the stress profiles.
  const double kDrops[] = {0.0, 0.10, 0.30};
  const std::uint64_t kSeeds[] = {1, 2, 3};

  sgm::TraceLog matrix_trace;
  // The final (hostile) cell's registry survives the loop for --metrics-out.
  std::unique_ptr<sgm::Telemetry> last_cell_telemetry;

  std::printf("{\"benchmark\": \"reliability_layer\","
              " \"schema_version\": %ld,"
              " \"workload\": \"jester_like/linf\",\n \"runs\": [\n",
              kSchemaVersion);
  bool first = true;
  for (const double drop : kDrops) {
    for (const std::uint64_t seed : kSeeds) {
      Cell cell;
      cell.seed = seed;
      cell.drop = drop;
      cell.duplicate = drop > 0.0 ? 0.05 : 0.0;
      cell.max_delay_rounds = drop > 0.0 ? 2 : 0;
      auto telemetry = std::make_unique<sgm::Telemetry>();
      RunCell(cell, first, trace_out.empty() ? nullptr : &matrix_trace,
              telemetry.get());
      first = false;
      last_cell_telemetry = std::move(telemetry);
    }
  }
  std::printf("\n]}\n");

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    last_cell_telemetry->WriteMetricsJson(out);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    matrix_trace.WriteJsonl(out);
  }
  return 0;
}
