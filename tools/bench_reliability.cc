// Reliability-layer cost baseline: runs the message-passing runtime (SGM,
// L∞-distance, Jester-like workload) over a fixed seed × drop-rate matrix
// and emits one JSON record per cell — paper-comparable traffic, transport
// totals (retransmissions/acks included), sync counts, reliability-layer
// activity, and wall time.
//
// The committed BENCH_reliability.json at the repo root is the output of
//   bench_reliability > BENCH_reliability.json
// All counters are seed-deterministic, so a diff in anything except
// wall_time_ms is a behaviour change and should be reviewed as one.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "data/jester_like.h"
#include "functions/linf_distance.h"
#include "runtime/driver.h"

namespace {

struct Cell {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  int max_delay_rounds = 0;
};

constexpr int kNumSites = 24;
constexpr long kCycles = 300;
constexpr std::size_t kNumBuckets = 8;
constexpr std::size_t kWindow = 50;
constexpr double kThreshold = 5.0;

void RunCell(const Cell& cell, bool first) {
  sgm::JesterLikeConfig workload;
  workload.num_sites = kNumSites;
  workload.window = kWindow;
  workload.num_buckets = kNumBuckets;
  workload.seed = sgm::DeriveSeed(cell.seed, 101);

  sgm::JesterLikeGenerator source(workload);
  const sgm::LInfDistance function{sgm::Vector(kNumBuckets)};

  sgm::RuntimeConfig node;
  node.threshold = kThreshold;
  node.max_step_norm = source.max_step_norm();
  node.drift_norm_cap = source.max_drift_norm();
  node.seed = sgm::DeriveSeed(cell.seed, 202);

  sgm::SimTransportConfig transport;
  transport.seed = sgm::DeriveSeed(cell.seed, 303);
  transport.drop_probability = cell.drop;
  transport.duplicate_probability = cell.duplicate;
  transport.max_delay_rounds = cell.max_delay_rounds;

  sgm::RuntimeDriver driver(kNumSites, function, node, transport);

  const auto start = std::chrono::steady_clock::now();
  std::vector<sgm::Vector> locals;
  source.Advance(&locals);
  driver.Initialize(locals);
  for (long t = 1; t <= kCycles; ++t) {
    source.Advance(&locals);
    driver.Tick(locals);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  const sgm::SimTransport* sim = driver.sim_transport();
  const sgm::ReliableTransport& reliable = driver.reliable_transport();
  const sgm::CoordinatorNode& coordinator = driver.coordinator();
  std::printf(
      "%s  {\"seed\": %llu, \"drop\": %.2f, \"duplicate\": %.2f,"
      " \"max_delay_rounds\": %d, \"sites\": %d, \"cycles\": %ld,\n"
      "   \"paper_messages\": %ld, \"paper_bytes\": %.0f,"
      " \"transport_messages\": %ld, \"transport_bytes\": %.0f,\n"
      "   \"full_syncs\": %ld, \"degraded_syncs\": %ld,"
      " \"partial_resolutions\": %ld,\n"
      "   \"retransmissions\": %ld, \"acks\": %ld,"
      " \"duplicates_suppressed\": %ld, \"give_ups\": %ld,"
      " \"rejoins_granted\": %ld, \"stale_epoch_drops\": %ld,\n"
      "   \"wall_time_ms\": %.1f}",
      first ? "" : ",\n",
      static_cast<unsigned long long>(cell.seed), cell.drop, cell.duplicate,
      cell.max_delay_rounds, kNumSites, kCycles, sim->messages_sent(),
      sim->bytes_sent(), sim->transport_messages_sent(),
      sim->transport_bytes_sent(), coordinator.full_syncs(),
      coordinator.degraded_syncs(), coordinator.partial_resolutions(),
      reliable.retransmissions(), reliable.acks_sent(),
      reliable.duplicates_suppressed(), reliable.give_ups(),
      coordinator.rejoins_granted(), coordinator.stale_epoch_drops(),
      wall_ms);
}

}  // namespace

int main() {
  // Drop-rate tiers of the acceptance matrix: clean, moderate, hostile.
  // Duplicates/delays scale with the drop tier, like the stress profiles.
  const double kDrops[] = {0.0, 0.10, 0.30};
  const std::uint64_t kSeeds[] = {1, 2, 3};

  std::printf("{\"benchmark\": \"reliability_layer\","
              " \"workload\": \"jester_like/linf\",\n \"runs\": [\n");
  bool first = true;
  for (const double drop : kDrops) {
    for (const std::uint64_t seed : kSeeds) {
      Cell cell;
      cell.seed = seed;
      cell.drop = drop;
      cell.duplicate = drop > 0.0 ? 0.05 : 0.0;
      cell.max_delay_rounds = drop > 0.0 ? 2 : 0;
      RunCell(cell, first);
      first = false;
    }
  }
  std::printf("\n]}\n");
  return 0;
}
