// Scale sweep: runs the message-passing runtime (SGM, L∞-distance,
// Jester-like workload) at increasing site counts and emits one JSON row
// per deployment size — update throughput, per-sync-cycle wall latency
// quantiles, the paper-vs-transport cost split, and what the telemetry
// plane itself cost (trace events emitted/sampled-out and the ns spent
// inside Emit, as a percentage of the run's wall time).
//
// The committed BENCH_scale.json at the repo root is the output of
//   bench_scale > BENCH_scale.json
// Wall-clock columns (wall_time_ms, updates_per_sec, ns_per_update,
// sync_cycle_p*_ns, telemetry_overhead_pct) vary with the machine; CI gates
// them loosely via tools/bench_drift_check --columns=ns_per_update,
// sync_cycle_p99_ns --tolerance=3.0. Everything else (messages, bytes,
// syncs, trace counters) is seed-deterministic.
//
// Flags:
//   --sites=a,b,c     site counts to sweep            [24,128,512,2048]
//   --cycles=N        update cycles per row (0 = auto: fewer cycles at
//                     larger N so the sweep stays minutes-bounded)   [0]
//   --trace-sample=R  head-based trace sampling rate  [0.1]
//   --loopback        additionally run each site count ≤ --loopback-max
//                     through the real-socket loopback runtime (one
//                     CoordinatorServer + N SiteClient threads); rows get
//                     "mode": "loopback" and their own seed stream
//   --loopback-max=N  largest loopback deployment (thread-per-site makes
//                     thousands of sites meaningless on one box)    [128]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "data/jester_like.h"
#include "functions/linf_distance.h"
#include "obs/telemetry.h"
#include "runtime/coordinator_server.h"
#include "runtime/driver.h"
#include "runtime/site_client.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Bump when per-row columns are added or renamed.
constexpr long kSchemaVersion = 1;
constexpr std::size_t kNumBuckets = 8;
constexpr std::size_t kWindow = 50;
constexpr double kThreshold = 5.0;
/// Row seeds derive from the site count so every row is its own
/// bench_drift_check cell (cells are keyed seed × drop).
constexpr std::uint64_t kSimSeedBase = 9000;
constexpr std::uint64_t kLoopbackSeedBase = 9100;

/// Larger deployments run fewer cycles: per-cycle work grows ~linearly in
/// N, so this keeps every row seconds-bounded without silently shrinking
/// the biggest ones to nothing.
long CyclesFor(int sites) {
  if (sites <= 32) return 240;
  if (sites <= 1024) return 120;
  return 40;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

struct RowResult {
  bool ok = false;
  long cycles = 0;
  double wall_ms = 0.0;
  std::vector<double> cycle_ns;  ///< per-sync-cycle wall latency
  long paper_messages = 0;
  double paper_bytes = 0.0;
  long transport_messages = 0;
  double transport_bytes = 0.0;
  long full_syncs = 0;
  long partial_resolutions = 0;
  sgm::TraceLog::SelfCost trace_cost;
};

sgm::RuntimeConfig NodeConfig(std::uint64_t seed, double trace_sample,
                              const sgm::JesterLikeGenerator& source,
                              sgm::Telemetry* telemetry) {
  sgm::RuntimeConfig node;
  node.threshold = kThreshold;
  node.max_step_norm = source.max_step_norm();
  node.drift_norm_cap = source.max_drift_norm();
  node.seed = sgm::DeriveSeed(seed, 202);
  node.telemetry = telemetry;
  node.trace_sample_rate = trace_sample;
  return node;
}

sgm::JesterLikeConfig WorkloadConfig(int sites, std::uint64_t seed) {
  sgm::JesterLikeConfig workload;
  workload.num_sites = sites;
  workload.window = kWindow;
  workload.num_buckets = kNumBuckets;
  workload.seed = sgm::DeriveSeed(seed, 101);
  return workload;
}

/// One single-process sweep row: the RuntimeDriver over the faultless
/// simulated transport, which isolates protocol + telemetry cost from
/// kernel socket cost.
RowResult RunSimRow(int sites, long cycles, std::uint64_t seed,
                    double trace_sample) {
  RowResult row;
  row.cycles = cycles;
  sgm::JesterLikeGenerator source(WorkloadConfig(sites, seed));
  const sgm::LInfDistance function{sgm::Vector(kNumBuckets)};
  sgm::Telemetry telemetry;
  const sgm::RuntimeConfig node =
      NodeConfig(seed, trace_sample, source, &telemetry);
  sgm::SimTransportConfig transport;
  transport.seed = sgm::DeriveSeed(seed, 303);
  sgm::RuntimeDriver driver(sites, function, node, transport);

  const auto start = Clock::now();
  std::vector<sgm::Vector> locals;
  source.Advance(&locals);
  driver.Initialize(locals);
  row.cycle_ns.reserve(static_cast<std::size_t>(cycles));
  for (long t = 1; t <= cycles; ++t) {
    source.Advance(&locals);
    const auto cycle_start = Clock::now();
    driver.Tick(locals);
    row.cycle_ns.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - cycle_start)
            .count());
  }
  row.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();

  sgm::MetricRegistry& reg = telemetry.registry;
  row.paper_messages = reg.GetCounter("transport.paper_messages")->value();
  row.paper_bytes = reg.GetGauge("transport.paper_bytes")->value();
  row.transport_messages =
      reg.GetCounter("transport.total_messages")->value();
  row.transport_bytes = reg.GetGauge("transport.total_bytes")->value();
  row.full_syncs = driver.coordinator().full_syncs();
  row.partial_resolutions = driver.coordinator().partial_resolutions();
  row.trace_cost = telemetry.trace.self_cost();
  row.ok = true;
  return row;
}

/// One loopback row: a real-socket deployment (CoordinatorServer + one
/// SiteClient thread per site), measuring the same columns through the
/// kernel. Thread-per-site bounds the useful N — the caller caps it.
RowResult RunLoopbackRow(int sites, long cycles, std::uint64_t seed,
                         double trace_sample) {
  RowResult row;
  row.cycles = cycles;
  const sgm::JesterLikeConfig workload = WorkloadConfig(sites, seed);
  sgm::JesterLikeGenerator probe(workload);
  const sgm::LInfDistance function{sgm::Vector(kNumBuckets)};
  sgm::Telemetry telemetry;

  sgm::CoordinatorServerConfig server_config;
  server_config.num_sites = sites;
  server_config.runtime = NodeConfig(seed, trace_sample, probe, &telemetry);
  sgm::CoordinatorServer server(function, server_config);
  if (!server.Listen()) return row;

  std::atomic<bool> sites_ok{true};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(sites));
  const int port = server.port();
  for (int id = 0; id < sites; ++id) {
    threads.emplace_back([&, id] {
      sgm::SiteClientConfig config;
      config.site_id = id;
      config.num_sites = sites;
      config.port = port;
      config.runtime = NodeConfig(seed, trace_sample, probe, nullptr);
      sgm::JesterLikeGenerator generator(workload);
      sgm::SiteClient client(function, config);
      if (!client.Connect()) {
        sites_ok.store(false);
        return;
      }
      std::vector<sgm::Vector> locals;
      long advanced = 0;
      if (!client.Run([&](long cycle) {
            while (advanced <= cycle) {
              generator.Advance(&locals);
              ++advanced;
            }
            return locals[static_cast<std::size_t>(id)];
          })) {
        sites_ok.store(false);
      }
    });
  }

  const auto start = Clock::now();
  bool ok = server.WaitForSites();
  row.cycle_ns.reserve(static_cast<std::size_t>(cycles));
  for (long cycle = 0; ok && cycle <= cycles; ++cycle) {
    const auto cycle_start = Clock::now();
    ok = server.RunCycle();
    row.cycle_ns.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - cycle_start)
            .count());
  }
  server.Shutdown();
  for (std::thread& t : threads) t.join();
  row.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();

  row.ok = ok && sites_ok.load();
  row.paper_messages = server.PaperMessages();
  row.paper_bytes = server.PaperBytes();
  row.transport_messages = server.transport().transport_messages_sent();
  row.transport_bytes = server.transport().transport_bytes_sent();
  row.full_syncs = server.FullSyncs();
  row.partial_resolutions = server.PartialResolutions();
  row.trace_cost = telemetry.trace.self_cost();
  return row;
}

void PrintRow(const char* mode, int sites, std::uint64_t seed,
              double trace_sample, const RowResult& row, bool first) {
  const long updates = static_cast<long>(sites) * row.cycles;
  const double wall_ns = row.wall_ms * 1e6;
  const double updates_per_sec =
      row.wall_ms > 0.0 ? 1000.0 * static_cast<double>(updates) / row.wall_ms
                        : 0.0;
  const double ns_per_update =
      updates > 0 ? wall_ns / static_cast<double>(updates) : 0.0;
  const double telemetry_ns =
      static_cast<double>(row.trace_cost.telemetry_ns);
  const double overhead_pct =
      wall_ns > 0.0 ? 100.0 * telemetry_ns / wall_ns : 0.0;
  std::printf(
      "%s  {\"seed\": %llu, \"drop\": 0.00, \"mode\": \"%s\","
      " \"sites\": %d, \"cycles\": %ld, \"trace_sample\": %.2f,\n"
      "   \"updates\": %ld, \"wall_time_ms\": %.1f,"
      " \"updates_per_sec\": %.0f, \"ns_per_update\": %.0f,\n"
      "   \"sync_cycle_p50_ns\": %.0f, \"sync_cycle_p95_ns\": %.0f,"
      " \"sync_cycle_p99_ns\": %.0f,\n"
      "   \"paper_messages\": %ld, \"paper_bytes\": %.0f,"
      " \"transport_messages\": %ld, \"transport_bytes\": %.0f,"
      " \"overhead_message_ratio\": %.4f,\n"
      "   \"full_syncs\": %ld, \"partial_resolutions\": %ld,\n"
      "   \"trace_events\": %ld, \"trace_recorded\": %ld,"
      " \"trace_sampled_out\": %ld, \"telemetry_ns\": %.0f,"
      " \"telemetry_overhead_pct\": %.3f}",
      first ? "" : ",\n", static_cast<unsigned long long>(seed), mode, sites,
      row.cycles, trace_sample, updates, row.wall_ms, updates_per_sec,
      ns_per_update, Percentile(row.cycle_ns, 0.50),
      Percentile(row.cycle_ns, 0.95), Percentile(row.cycle_ns, 0.99),
      row.paper_messages, row.paper_bytes, row.transport_messages,
      row.transport_bytes,
      row.paper_messages > 0
          ? static_cast<double>(row.transport_messages - row.paper_messages) /
                static_cast<double>(row.paper_messages)
          : 0.0,
      row.full_syncs, row.partial_resolutions, row.trace_cost.events_emitted,
      row.trace_cost.events_recorded, row.trace_cost.events_sampled_out,
      telemetry_ns, overhead_pct);
}

std::vector<int> ParseSitesList(const std::string& list) {
  std::vector<int> sites;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) sites.push_back(std::atoi(item.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return sites;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sites_list = {24, 128, 512, 2048};
  long cycles_override = 0;
  double trace_sample = 0.1;
  bool loopback = false;
  int loopback_max = 128;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sites=", 0) == 0) {
      sites_list = ParseSitesList(arg.substr(std::strlen("--sites=")));
      if (sites_list.empty()) {
        std::fprintf(stderr, "--sites= needs a comma-separated list\n");
        return 2;
      }
    } else if (arg.rfind("--cycles=", 0) == 0) {
      cycles_override = std::atol(arg.c_str() + std::strlen("--cycles="));
    } else if (arg.rfind("--trace-sample=", 0) == 0) {
      trace_sample = std::atof(arg.c_str() + std::strlen("--trace-sample="));
    } else if (arg == "--loopback") {
      loopback = true;
    } else if (arg.rfind("--loopback-max=", 0) == 0) {
      loopback_max = std::atoi(arg.c_str() + std::strlen("--loopback-max="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("{\"benchmark\": \"scale\", \"schema_version\": %ld,"
              " \"workload\": \"jester_like/linf\","
              " \"trace_sample\": %.2f,\n \"runs\": [\n",
              kSchemaVersion, trace_sample);
  bool first = true;
  bool all_ok = true;
  for (const int sites : sites_list) {
    if (sites <= 0) continue;
    const long cycles =
        cycles_override > 0 ? cycles_override : CyclesFor(sites);
    const std::uint64_t seed = kSimSeedBase + static_cast<std::uint64_t>(sites);
    const RowResult row = RunSimRow(sites, cycles, seed, trace_sample);
    all_ok = all_ok && row.ok;
    PrintRow("sim", sites, seed, trace_sample, row, first);
    first = false;
  }
  if (loopback) {
    for (const int sites : sites_list) {
      if (sites <= 0) continue;
      if (sites > loopback_max) {
        std::fprintf(stderr,
                     "note: loopback row for %d sites skipped"
                     " (--loopback-max=%d; thread-per-site)\n",
                     sites, loopback_max);
        continue;
      }
      const long cycles = cycles_override > 0 ? cycles_override : 60;
      const std::uint64_t seed =
          kLoopbackSeedBase + static_cast<std::uint64_t>(sites);
      const RowResult row = RunLoopbackRow(sites, cycles, seed, trace_sample);
      all_ok = all_ok && row.ok;
      PrintRow("loopback", sites, seed, trace_sample, row, first);
      first = false;
    }
  }
  std::printf("\n]}\n");
  return all_ok ? 0 : 1;
}
