// dst_stress — deterministic-simulation stress runner and replay tool.
//
// Default mode sweeps the full protocol × function × fault matrix over many
// master seeds; any invariant violation prints the exact single-leg command
// that replays it deterministically:
//
//   dst_stress --seeds=20                 # the CI stress sweep
//   dst_stress --leg=runtime --protocol=SGM --function=l2 --seed=77 \
//              --drop=0.25 --delay=3     # replay one leg
//   dst_stress --leg=sim --protocol=SGM --function=linf --seed=5 \
//              --sabotage                # force a violation (tolerance = 0)
//
// Flags:
//   --seeds      number of master seeds for the sweep mode     [20]
//   --seed       master (sweep) or leg seed (with --leg)       [1]
//   --leg        sim | runtime | parity  (selects replay mode)
//   --protocol   GM | BGM | SGM | CVSGM                        [SGM]
//   --function   l2 | linf                                     [l2]
//   --sites      sites N                                       [24]
//   --cycles     update cycles                                 [300]
//   --drop       per-link drop probability                     [0]
//   --dup        per-link duplication probability              [0]
//   --delay      max delivery delay in rounds                  [0]
//   --crash      per-cycle site-crash probability              [0]
//   --corrupt    per-message wire bit-flip probability; the v4 frame
//                CRC32C turns every flip into a detected drop  [0]
//   --coord-crash[=P]  per-cycle COORDINATOR crash probability; bare flag
//                      selects the CI default 0.04. Applies to runtime legs
//                      (sweep mode) or a --leg=runtime replay; each crash
//                      recovers from the checkpoint store under injected
//                      torn-tail storage faults and is invariant-checked
//   --coord-down=N     max coordinator downtime in cycles      [4]
//   --stall      per-cycle site-stall probability (straggler fault: the
//                site goes silent without losing state, and the cycle's
//                barrier deadline reports it lagging)           [0]
//   --stall-cycles=N   max stall length in cycles               [5]
//   --sabotage   collapse invariant tolerances to zero
//   --audit      run the online accuracy auditor on every sim/runtime leg;
//                a leg then also fails when the auditor sees an ε / ε_C
//                bound violation or an out-of-zone FN rate above δ + 0.01
//   --audit-epsilon=E   auditor zone-ε override (0 = exact agreement —
//                       the deliberate negative-test configuration)
//   --audit-max-run=R   auditor out-of-zone run tolerance override
//   --verbose    print every leg's summary, not just failures
//   --trace-sample=R    head-based trace sampling rate in [0, 1]; 1.0 keeps
//                       the byte-identical full trace, lower rates drop
//                       unsampled cascades/noise from the trace only  [1.0]
//   --trace=PATH        write the structured protocol trace (JSONL; single
//                       leg only — timestamps are logical, so a replayed
//                       seed reproduces the file byte-for-byte)
//   --metrics-out=PATH  write the metric-registry snapshot JSON (single
//                       leg only)
//   --prom-out=PATH     write the metric registry in Prometheus text
//                       exposition format (single leg only)
//   --series-out=PATH   write the per-cycle windowed time-series JSONL
//                       (single leg only; see docs/OBSERVABILITY.md)
//   --alerts-out=PATH   run the online anomaly detector over the per-cycle
//                       metric stream and write the alert JSONL (single
//                       leg only; deterministic — part of the
//                       replay-by-seed contract)
//
// Exit status: 0 when every invariant (and, with --audit, every accuracy
// bound) held, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "obs/telemetry.h"
#include "sim/stress.h"

namespace {

struct Flags {
  std::uint64_t seed = 1;
  int seeds = 20;
  std::string leg;
  sgm::StressConfig config;
  bool verbose = false;
  std::string trace_out;
  std::string metrics_out;
  std::string prom_out;
  std::string series_out;
  std::string alerts_out;
};

/// Audit FN-rate gate: δ + 0.01 with the protocols' default δ = 0.1. Only
/// out-of-zone false negatives count — in-zone disagreement is the benign
/// churn the (ε, δ) contract explicitly permits.
constexpr double kFnRateGate = 0.11;

bool AuditFailed(const sgm::StressReport& report) {
  if (!report.config.audit) return false;
  if (report.leg == "parity") return false;  // no oracle on the parity leg
  return report.audit.bound_violations > 0 ||
         report.audit.fn_rate() > kFnRateGate;
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseArgs(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seed", &value) && value != nullptr) {
      flags->seed = std::strtoull(value, nullptr, 10);
      flags->config.seed = flags->seed;
    } else if (ParseFlag(argv[i], "--seeds", &value) && value != nullptr) {
      flags->seeds = std::atoi(value);
    } else if (ParseFlag(argv[i], "--leg", &value) && value != nullptr) {
      flags->leg = value;
    } else if (ParseFlag(argv[i], "--protocol", &value) && value != nullptr) {
      if (!sgm::ParseStressProtocol(value, &flags->config.protocol)) {
        std::fprintf(stderr, "unknown --protocol=%s\n", value);
        return false;
      }
    } else if (ParseFlag(argv[i], "--function", &value) && value != nullptr) {
      if (!sgm::ParseStressFunction(value, &flags->config.function)) {
        std::fprintf(stderr, "unknown --function=%s\n", value);
        return false;
      }
    } else if (ParseFlag(argv[i], "--sites", &value) && value != nullptr) {
      flags->config.num_sites = std::atoi(value);
    } else if (ParseFlag(argv[i], "--cycles", &value) && value != nullptr) {
      flags->config.cycles = std::atol(value);
    } else if (ParseFlag(argv[i], "--drop", &value) && value != nullptr) {
      flags->config.drop_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--dup", &value) && value != nullptr) {
      flags->config.duplicate_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--delay", &value) && value != nullptr) {
      flags->config.max_delay_rounds = std::atoi(value);
    } else if (ParseFlag(argv[i], "--crash", &value) && value != nullptr) {
      flags->config.crash_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--corrupt", &value) && value != nullptr) {
      flags->config.corrupt_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--coord-crash", &value)) {
      flags->config.coord_crash_probability =
          value != nullptr ? std::atof(value) : 0.04;
    } else if (ParseFlag(argv[i], "--coord-down", &value) &&
               value != nullptr) {
      flags->config.max_coord_crash_cycles = std::atoi(value);
    } else if (ParseFlag(argv[i], "--stall-cycles", &value) &&
               value != nullptr) {
      flags->config.max_stall_cycles = std::atoi(value);
    } else if (ParseFlag(argv[i], "--stall", &value) && value != nullptr) {
      flags->config.stall_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--sabotage", &value)) {
      flags->config.sabotage_tolerance = true;
    } else if (ParseFlag(argv[i], "--audit-epsilon", &value) &&
               value != nullptr) {
      flags->config.audit = true;
      flags->config.audit_epsilon = std::atof(value);
    } else if (ParseFlag(argv[i], "--audit-max-run", &value) &&
               value != nullptr) {
      flags->config.audit = true;
      flags->config.audit_max_run = std::atol(value);
    } else if (ParseFlag(argv[i], "--audit", &value)) {
      flags->config.audit = true;
    } else if (ParseFlag(argv[i], "--trace-sample", &value) &&
               value != nullptr) {
      flags->config.trace_sample_rate = std::atof(value);
    } else if (ParseFlag(argv[i], "--verbose", &value)) {
      flags->verbose = true;
    } else if (ParseFlag(argv[i], "--trace", &value) && value != nullptr) {
      flags->trace_out = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value) &&
               value != nullptr) {
      flags->metrics_out = value;
    } else if (ParseFlag(argv[i], "--prom-out", &value) && value != nullptr) {
      flags->prom_out = value;
    } else if (ParseFlag(argv[i], "--series-out", &value) &&
               value != nullptr) {
      flags->series_out = value;
    } else if (ParseFlag(argv[i], "--alerts-out", &value) &&
               value != nullptr) {
      flags->alerts_out = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int Report(const std::vector<sgm::StressReport>& reports, bool verbose) {
  int failures = 0;
  for (const sgm::StressReport& report : reports) {
    const bool audit_failed = AuditFailed(report);
    if (!report.ok() || audit_failed) {
      ++failures;
      std::fputs(report.Summary().c_str(), stdout);
      if (audit_failed) {
        std::printf(
            "AUDIT FAILED (%s): %ld bound violation(s), oz-FN rate %.4f"
            " (gate %.2f), first violation cycle %ld span %lld\n",
            report.leg.c_str(), report.audit.bound_violations,
            report.audit.fn_rate(), kFnRateGate,
            report.audit.first_violation_cycle,
            static_cast<long long>(report.audit.first_violation_span));
      }
    } else if (verbose) {
      std::fputs(report.Summary().c_str(), stdout);
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseArgs(argc, argv, &flags)) return 2;

  // Telemetry attaches to single-leg runs only: the sweep runs many legs
  // whose counters would conflate in one registry, and the parity leg
  // ignores it by design.
  sgm::Telemetry telemetry;
  const bool want_telemetry =
      !flags.trace_out.empty() || !flags.metrics_out.empty() ||
      !flags.prom_out.empty() || !flags.series_out.empty() ||
      !flags.alerts_out.empty();
  if (want_telemetry) {
    if (flags.leg != "sim" && flags.leg != "runtime") {
      std::fprintf(stderr,
                   "--trace/--metrics-out/--prom-out/--series-out/"
                   "--alerts-out require a single leg (--leg=sim|runtime)\n");
      return 2;
    }
    flags.config.telemetry = &telemetry;
    if (!flags.series_out.empty()) telemetry.EnableTimeSeries();
    if (!flags.alerts_out.empty()) {
      // Same seed as the leg: alerts are part of the replay-by-seed
      // contract (two runs of one leg produce byte-identical files).
      sgm::AnomalyDetectorConfig anomaly_config;
      anomaly_config.seed = flags.config.seed;
      telemetry.EnableAnomalyDetection(anomaly_config);
    }
  }

  std::vector<sgm::StressReport> reports;
  if (flags.leg.empty()) {
    // Sweep mode: one full matrix per master seed.
    for (int i = 0; i < flags.seeds; ++i) {
      const std::uint64_t master = sgm::DeriveSeed(flags.seed, i);
      std::printf("== master seed %llu (%d/%d) ==\n",
                  static_cast<unsigned long long>(master), i + 1,
                  flags.seeds);
      const auto suite = sgm::RunStressSuite(
          master, flags.config.audit, flags.config.coord_crash_probability,
          flags.config.max_coord_crash_cycles);
      reports.insert(reports.end(), suite.begin(), suite.end());
    }
  } else if (flags.leg == "sim") {
    reports.push_back(sgm::RunSimStress(flags.config));
  } else if (flags.leg == "runtime") {
    reports.push_back(sgm::RunRuntimeStress(flags.config));
  } else if (flags.leg == "parity") {
    reports.push_back(sgm::RunTransportParity(flags.config));
  } else {
    std::fprintf(stderr, "unknown --leg=%s (sim | runtime | parity)\n",
                 flags.leg.c_str());
    return 2;
  }

  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.trace_out.c_str());
      return 2;
    }
    telemetry.trace.WriteJsonl(out);
    std::printf("wrote %zu trace events to %s\n", telemetry.trace.size(),
                flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.metrics_out.c_str());
      return 2;
    }
    telemetry.WriteMetricsJson(out);
  }
  if (!flags.prom_out.empty()) {
    std::ofstream out(flags.prom_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.prom_out.c_str());
      return 2;
    }
    telemetry.WritePrometheus(out);
  }
  if (!flags.series_out.empty()) {
    std::ofstream out(flags.series_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.series_out.c_str());
      return 2;
    }
    telemetry.series->WriteJsonl(out);
    std::printf("wrote %zu series samples to %s\n",
                telemetry.series->size(), flags.series_out.c_str());
  }
  if (!flags.alerts_out.empty()) {
    std::ofstream out(flags.alerts_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.alerts_out.c_str());
      return 2;
    }
    telemetry.anomaly->WriteAlertsJsonl(out);
    std::printf("wrote %zu alerts to %s\n", telemetry.anomaly->alert_count(),
                flags.alerts_out.c_str());
  }

  const int failures = Report(reports, flags.verbose);
  std::printf("%zu legs, %d with violations\n", reports.size(), failures);
  return failures == 0 ? 0 : 1;
}
