// dst_stress — deterministic-simulation stress runner and replay tool.
//
// Default mode sweeps the full protocol × function × fault matrix over many
// master seeds; any invariant violation prints the exact single-leg command
// that replays it deterministically:
//
//   dst_stress --seeds=20                 # the CI stress sweep
//   dst_stress --leg=runtime --protocol=SGM --function=l2 --seed=77 \
//              --drop=0.25 --delay=3     # replay one leg
//   dst_stress --leg=sim --protocol=SGM --function=linf --seed=5 \
//              --sabotage                # force a violation (tolerance = 0)
//
// Flags:
//   --seeds      number of master seeds for the sweep mode     [20]
//   --seed       master (sweep) or leg seed (with --leg)       [1]
//   --leg        sim | runtime | parity  (selects replay mode)
//   --protocol   GM | BGM | SGM | CVSGM                        [SGM]
//   --function   l2 | linf                                     [l2]
//   --sites      sites N                                       [24]
//   --cycles     update cycles                                 [300]
//   --drop       per-link drop probability                     [0]
//   --dup        per-link duplication probability              [0]
//   --delay      max delivery delay in rounds                  [0]
//   --crash      per-cycle site-crash probability              [0]
//   --sabotage   collapse invariant tolerances to zero
//   --verbose    print every leg's summary, not just failures
//   --trace=PATH        write the structured protocol trace (JSONL; single
//                       leg only — timestamps are logical, so a replayed
//                       seed reproduces the file byte-for-byte)
//   --metrics-out=PATH  write the metric-registry snapshot JSON (single
//                       leg only)
//
// Exit status: 0 when every invariant held, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "obs/telemetry.h"
#include "sim/stress.h"

namespace {

struct Flags {
  std::uint64_t seed = 1;
  int seeds = 20;
  std::string leg;
  sgm::StressConfig config;
  bool verbose = false;
  std::string trace_out;
  std::string metrics_out;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseArgs(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seed", &value) && value != nullptr) {
      flags->seed = std::strtoull(value, nullptr, 10);
      flags->config.seed = flags->seed;
    } else if (ParseFlag(argv[i], "--seeds", &value) && value != nullptr) {
      flags->seeds = std::atoi(value);
    } else if (ParseFlag(argv[i], "--leg", &value) && value != nullptr) {
      flags->leg = value;
    } else if (ParseFlag(argv[i], "--protocol", &value) && value != nullptr) {
      if (!sgm::ParseStressProtocol(value, &flags->config.protocol)) {
        std::fprintf(stderr, "unknown --protocol=%s\n", value);
        return false;
      }
    } else if (ParseFlag(argv[i], "--function", &value) && value != nullptr) {
      if (!sgm::ParseStressFunction(value, &flags->config.function)) {
        std::fprintf(stderr, "unknown --function=%s\n", value);
        return false;
      }
    } else if (ParseFlag(argv[i], "--sites", &value) && value != nullptr) {
      flags->config.num_sites = std::atoi(value);
    } else if (ParseFlag(argv[i], "--cycles", &value) && value != nullptr) {
      flags->config.cycles = std::atol(value);
    } else if (ParseFlag(argv[i], "--drop", &value) && value != nullptr) {
      flags->config.drop_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--dup", &value) && value != nullptr) {
      flags->config.duplicate_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--delay", &value) && value != nullptr) {
      flags->config.max_delay_rounds = std::atoi(value);
    } else if (ParseFlag(argv[i], "--crash", &value) && value != nullptr) {
      flags->config.crash_probability = std::atof(value);
    } else if (ParseFlag(argv[i], "--sabotage", &value)) {
      flags->config.sabotage_tolerance = true;
    } else if (ParseFlag(argv[i], "--verbose", &value)) {
      flags->verbose = true;
    } else if (ParseFlag(argv[i], "--trace", &value) && value != nullptr) {
      flags->trace_out = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value) &&
               value != nullptr) {
      flags->metrics_out = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int Report(const std::vector<sgm::StressReport>& reports, bool verbose) {
  int failures = 0;
  for (const sgm::StressReport& report : reports) {
    if (!report.ok()) {
      ++failures;
      std::fputs(report.Summary().c_str(), stdout);
    } else if (verbose) {
      std::fputs(report.Summary().c_str(), stdout);
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseArgs(argc, argv, &flags)) return 2;

  // Telemetry attaches to single-leg runs only: the sweep runs many legs
  // whose counters would conflate in one registry, and the parity leg
  // ignores it by design.
  sgm::Telemetry telemetry;
  const bool want_telemetry =
      !flags.trace_out.empty() || !flags.metrics_out.empty();
  if (want_telemetry) {
    if (flags.leg != "sim" && flags.leg != "runtime") {
      std::fprintf(stderr,
                   "--trace/--metrics-out require a single leg"
                   " (--leg=sim|runtime)\n");
      return 2;
    }
    flags.config.telemetry = &telemetry;
  }

  std::vector<sgm::StressReport> reports;
  if (flags.leg.empty()) {
    // Sweep mode: one full matrix per master seed.
    for (int i = 0; i < flags.seeds; ++i) {
      const std::uint64_t master = sgm::DeriveSeed(flags.seed, i);
      std::printf("== master seed %llu (%d/%d) ==\n",
                  static_cast<unsigned long long>(master), i + 1,
                  flags.seeds);
      const auto suite = sgm::RunStressSuite(master);
      reports.insert(reports.end(), suite.begin(), suite.end());
    }
  } else if (flags.leg == "sim") {
    reports.push_back(sgm::RunSimStress(flags.config));
  } else if (flags.leg == "runtime") {
    reports.push_back(sgm::RunRuntimeStress(flags.config));
  } else if (flags.leg == "parity") {
    reports.push_back(sgm::RunTransportParity(flags.config));
  } else {
    std::fprintf(stderr, "unknown --leg=%s (sim | runtime | parity)\n",
                 flags.leg.c_str());
    return 2;
  }

  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.trace_out.c_str());
      return 2;
    }
    telemetry.trace.WriteJsonl(out);
    std::printf("wrote %zu trace events to %s\n", telemetry.trace.size(),
                flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flags.metrics_out.c_str());
      return 2;
    }
    telemetry.WriteMetricsJson(out);
  }

  const int failures = Report(reports, flags.verbose);
  std::printf("%zu legs, %d with violations\n", reports.size(), failures);
  return failures == 0 ? 0 : 1;
}
