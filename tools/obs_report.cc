// obs_report — renders a per-run accuracy / cost report from the
// observability exports of a single leg:
//
//   dst_stress --leg=runtime --seed=7 --drop=0.3 --audit \
//              --metrics-out=metrics.json --series-out=series.jsonl
//   obs_report --metrics=metrics.json --series=series.jsonl
//
// Sections:
//   accuracy   auditor verdict counts (TP/FP/FN/TN), out-of-zone
//              disagreements, ε-bound violations, |f(v̂) − f(v)| quantiles
//   cost       paper-comparable vs transport message/byte totals, the
//              reliability-layer overhead behind the difference, sync mix
//   series     windowed view from the time-series JSONL: per-window
//              message rates and error quantiles at a few checkpoints
//
// Either input may be given alone. Exit status: 0 on a readable report,
// 1 when the auditor recorded a bound violation (so CI can gate on it),
// 2 on usage/parse errors.
//
// Live mode (against a daemon started with --http-port, see
// docs/OBSERVABILITY.md):
//
//   obs_report --watch=PORT [--interval-ms=1000] [--iterations=0]
//
// polls /healthz, /metrics and /alerts on the daemon's ops endpoints and
// renders one cost/accuracy/alert table row per poll (0 iterations = until
// the daemon goes away). Exits 0 when the daemon shut down cleanly after
// at least one successful poll, 1 when it was never reachable.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_exporter.h"
#include "obs/json.h"

namespace {

bool ParseFlag(const std::string& arg, const char* flag, std::string* out) {
  const std::size_t len = std::strlen(flag);
  if (arg.rfind(flag, 0) != 0) return false;
  *out = arg.substr(len);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

double Number(const sgm::JsonValue& root, const char* section,
              const char* key) {
  const sgm::JsonValue* group = root.Find(section);
  if (group == nullptr) return 0.0;
  return group->NumberOr(key, 0.0);
}

long Count(const sgm::JsonValue& root, const char* section, const char* key) {
  return static_cast<long>(Number(root, section, key));
}

/// Prints the accuracy and cost sections from a metric snapshot; returns
/// the number of auditor bound violations (the CI gate).
long ReportMetrics(const sgm::JsonValue& root) {
  const long cycles = Count(root, "counters", "audit.cycles");
  long violations = 0;
  if (cycles > 0) {
    const long tp = Count(root, "counters", "audit.true_positives");
    const long tn = Count(root, "counters", "audit.true_negatives");
    const long fp = Count(root, "counters", "audit.false_positives");
    const long fn = Count(root, "counters", "audit.false_negatives");
    const long oz = Count(root, "counters", "audit.out_of_zone_disagreements");
    violations = Count(root, "counters", "audit.bound_violations");
    std::printf("accuracy (%ld audited cycles)\n", cycles);
    std::printf("  verdicts        TP=%ld FP=%ld FN=%ld TN=%ld\n", tp, fp, fn,
                tn);
    std::printf("  disagreements   %ld (%ld out-of-zone)\n", fp + fn, oz);
    std::printf("  bound check     %s (%ld violation(s))\n",
                violations == 0 ? "OK" : "VIOLATED", violations);
    std::printf("  max |f(est)-f(truth)|  %.6g\n",
                Number(root, "gauges", "audit.max_abs_error"));
    if (const sgm::JsonValue* histograms = root.Find("histograms")) {
      if (const sgm::JsonValue* error = histograms->Find("audit.abs_error")) {
        std::printf("  |error| quantiles      p50=%.6g p95=%.6g p99=%.6g\n",
                    error->NumberOr("p50", 0.0), error->NumberOr("p95", 0.0),
                    error->NumberOr("p99", 0.0));
      }
    }
  } else {
    std::printf("accuracy: no audit counters (run dst_stress with --audit)\n");
  }

  const long paper_messages = Count(root, "counters",
                                    "transport.paper_messages");
  const long total_messages = Count(root, "counters",
                                    "transport.total_messages");
  const double paper_bytes = Number(root, "gauges", "transport.paper_bytes");
  const double total_bytes = Number(root, "gauges", "transport.total_bytes");
  std::printf("cost\n");
  std::printf("  paper-comparable  %ld msgs, %.0f bytes\n", paper_messages,
              paper_bytes);
  std::printf("  transport totals  %ld msgs, %.0f bytes", total_messages,
              total_bytes);
  if (paper_messages > 0) {
    std::printf("  (%.2fx message overhead)",
                static_cast<double>(total_messages) /
                    static_cast<double>(paper_messages));
  }
  std::printf("\n");
  std::printf("  reliability       %ld retransmits, %ld acks, %ld dups"
              " suppressed, %ld give-ups\n",
              Count(root, "counters", "transport.retransmissions"),
              Count(root, "counters", "transport.acks_sent"),
              Count(root, "counters", "transport.duplicates_suppressed"),
              Count(root, "counters", "transport.give_ups"));
  std::printf("  sync mix          %ld full, %ld partial, %ld degraded,"
              " %ld rejoins\n",
              Count(root, "counters", "coordinator.full_syncs"),
              Count(root, "counters", "coordinator.partial_resolutions"),
              Count(root, "counters", "coordinator.degraded_syncs"),
              Count(root, "counters", "coordinator.rejoins_granted"));
  return violations;
}

/// Prints windowed checkpoints from the series JSONL: first, quartile
/// points and last sample, with the window message rate and error
/// quantiles at each.
bool ReportSeries(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<sgm::JsonValue> samples;
  std::string line;
  long line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto parsed = sgm::JsonValue::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s:%ld: not JSON: %s\n", path.c_str(), line_number,
                   parsed.status().message().c_str());
      return false;
    }
    samples.push_back(parsed.ValueOrDie());
  }
  if (samples.empty()) {
    std::printf("series: %s is empty\n", path.c_str());
    return true;
  }

  std::printf("series (%zu samples from %s)\n", samples.size(), path.c_str());
  std::printf("  %8s %12s %12s %12s %12s\n", "cycle", "win msgs", "err p50",
              "err p95", "err p99");
  const std::size_t last = samples.size() - 1;
  std::size_t previous = static_cast<std::size_t>(-1);
  for (int quarter = 0; quarter <= 4; ++quarter) {
    const std::size_t index = quarter == 4 ? last : last * quarter / 4;
    if (index == previous) continue;
    previous = index;
    const sgm::JsonValue& sample = samples[index];
    const long cycle = static_cast<long>(sample.NumberOr("cycle", 0));
    double window_messages = 0.0;
    if (const sgm::JsonValue* window = sample.Find("window_counts")) {
      window_messages = window->NumberOr("transport.total_messages", 0.0);
    }
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    if (const sgm::JsonValue* gauges = sample.Find("window_gauges")) {
      if (const sgm::JsonValue* error = gauges->Find("audit.abs_error_last")) {
        p50 = error->NumberOr("p50", 0.0);
        p95 = error->NumberOr("p95", 0.0);
        p99 = error->NumberOr("p99", 0.0);
      }
    }
    std::printf("  %8ld %12.0f %12.6g %12.6g %12.6g\n", cycle,
                window_messages, p50, p95, p99);
  }
  return true;
}

/// Pulls one un-labelled sample value out of a Prometheus text exposition
/// ("sgm_transport_paper_messages_total 1234" → 1234). Returns 0 when the
/// family is absent — the render below treats every column as best-effort.
double PromValue(const std::string& exposition, const std::string& family) {
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(family + " ", 0) == 0) {
      return std::atof(line.c_str() + family.size() + 1);
    }
  }
  return 0.0;
}

/// --watch: polls the live ops endpoints and renders one table row per
/// poll. The daemon disappearing after a successful poll is the normal end
/// of a finite run, not an error.
int RunWatch(int port, long interval_ms, long iterations) {
  std::printf("watching 127.0.0.1:%d every %ldms\n", port, interval_ms);
  std::printf("  %8s %6s %6s %10s %8s %8s %6s %6s\n", "cycle", "epoch",
              "conn", "papermsgs", "fullsync", "retrans", "fn", "alerts");
  long polls_ok = 0;
  for (long i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::string health_body;
    if (!sgm::HttpGet(port, "/healthz", &health_body).ok()) {
      if (polls_ok > 0) {
        std::printf("daemon gone after %ld polls\n", polls_ok);
        return 0;
      }
      std::fprintf(stderr, "cannot reach 127.0.0.1:%d/healthz\n", port);
      return 1;
    }
    auto health = sgm::JsonValue::Parse(health_body);
    if (!health.ok()) {
      std::fprintf(stderr, "/healthz: not JSON\n");
      return 1;
    }
    // Best-effort: a daemon racing its own shutdown may drop these; the
    // row then renders zeros for the affected columns.
    std::string metrics_body;
    std::string alerts_body;
    (void)sgm::HttpGet(port, "/metrics", &metrics_body);
    (void)sgm::HttpGet(port, "/alerts", &alerts_body);
    long alerts = 0;
    if (auto parsed = sgm::JsonValue::Parse(alerts_body); parsed.ok()) {
      const sgm::JsonValue& value = parsed.ValueOrDie();
      if (value.is_array()) alerts = static_cast<long>(value.array().size());
    }
    const sgm::JsonValue& h = health.ValueOrDie();
    std::printf("  %8ld %6ld %4.0f/%-1.0f %10.0f %8.0f %8.0f %6.0f %6ld\n",
                static_cast<long>(h.NumberOr("cycle", 0)),
                static_cast<long>(h.NumberOr("epoch", 0)),
                h.NumberOr("connected_sites", 0),
                h.NumberOr("num_sites", 0),
                PromValue(metrics_body, "sgm_transport_paper_messages_total"),
                PromValue(metrics_body, "sgm_coordinator_full_syncs_total"),
                PromValue(metrics_body,
                          "sgm_transport_retransmissions_total"),
                PromValue(metrics_body, "sgm_audit_false_negatives_total"),
                alerts);
    std::fflush(stdout);
    ++polls_ok;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string series_path;
  int watch_port = -1;
  long interval_ms = 1000;
  long iterations = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "--metrics=", &metrics_path)) {
    } else if (ParseFlag(arg, "--series=", &series_path)) {
    } else if (ParseFlag(arg, "--watch=", &value)) {
      watch_port = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--interval-ms=", &value)) {
      interval_ms = std::atol(value.c_str());
    } else if (ParseFlag(arg, "--iterations=", &value)) {
      iterations = std::atol(value.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: obs_report [--metrics=metrics.json]"
                   " [--series=series.jsonl] | --watch=PORT"
                   " [--interval-ms=MS] [--iterations=N]\n");
      return 2;
    }
  }
  if (watch_port >= 0) return RunWatch(watch_port, interval_ms, iterations);
  if (metrics_path.empty() && series_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_report [--metrics=metrics.json]"
                 " [--series=series.jsonl] | --watch=PORT"
                 " [--interval-ms=MS] [--iterations=N]\n");
    return 2;
  }

  long violations = 0;
  if (!metrics_path.empty()) {
    std::string text;
    if (!ReadFile(metrics_path, &text)) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 2;
    }
    auto parsed = sgm::JsonValue::Parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: not JSON: %s\n", metrics_path.c_str(),
                   parsed.status().message().c_str());
      return 2;
    }
    violations = ReportMetrics(parsed.ValueOrDie());
  }
  if (!series_path.empty()) {
    if (!ReportSeries(series_path)) return 2;
  }
  return violations == 0 ? 0 : 1;
}
