// sgm_monitor — command-line experiment runner.
//
// Runs any protocol/function/workload combination of the library and prints
// the full metrics block, so ad-hoc comparisons don't require writing code:
//
//   sgm_monitor --workload=jester --function=linf --protocol=sgm \
//               --sites=500 --threshold=10 --cycles=2000 --delta=0.1
//   sgm_monitor --workload=csv --csv=trace.csv --function=l2 \
//               --protocol=gm --threshold=4
//
// Flags (all optional unless noted):
//   --workload   jester | reuters | synthetic | csv      [jester]
//   --csv        path for --workload=csv (cycle,site,x... rows)
//   --function   linf | jd | sj | l2 | chi2 | stdev | entropy  [linf]
//   --protocol   gm | bgm | pgm | sgm | msgm | bernoulli | cvgm | cvsgm [sgm]
//   --sites      number of sites N                        [500]
//   --threshold  T (required)
//   --delta      FN tolerance δ                           [0.1]
//   --cycles     update cycles                            [2000]
//   --seed       workload seed                            [11]
//   --trace      write the structured protocol trace (JSONL)
//   --metrics-out  write the metric-registry snapshot JSON
//
// Daemon modes (the real-process socket runtime; see docs/RUNTIME.md):
//
//   # coordinator service on loopback TCP
//   sgm_monitor --listen=7450 --sites=4 --workload=synthetic \
//               --function=l2 --threshold=4 --cycles=200 \
//               --prom-out=/run/sgm/metrics.prom --series-out=series.jsonl
//   # one process per site, same workload/function/threshold flags
//   sgm_monitor --site=0 --connect=127.0.0.1:7450 --sites=4 \
//               --workload=synthetic --function=l2 --threshold=4
//
//   --listen     run as coordinator daemon on this port (0 = ephemeral)
//   --site       run as site daemon with this site id
//   --connect    coordinator endpoint for --site ([host:]port; loopback)
//   --prom-out   coordinator: rewrite this Prometheus textfile every cycle
//   --series-out coordinator: per-cycle metric time series (JSONL)
//   --barrier-deadline-ms  coordinator: soft per-cycle barrier deadline; on
//                expiry the cycle closes over the responsive quorum and
//                silent sites accrue deadline misses (consecutive misses
//                quarantine a laggard as kLagging until it catches up; see
//                docs/RUNTIME.md straggler runbook). 0 disables — behavior
//                is then identical to pre-deadline builds          [0]
//   --lagging-misses  coordinator: consecutive deadline misses before a
//                site is quarantined (jittered per site)           [2]
//   --send-queue-frames  coordinator: per-peer bounded outbound queue
//                drained by a writer thread, so one stalled receiver can
//                never block the accept/cycle threads; overflow drops the
//                peer (dead-link path). 0 keeps synchronous writes [0]
//   --checkpoint-dir  coordinator: durable snapshot+WAL directory
//   --recover    coordinator: restore from --checkpoint-dir before serving
//                (restart-from-checkpoint; see docs/RUNTIME.md runbook)
//   --connect-attempts / --connect-base-ms / --connect-max-ms
//                site: bounded-retry dial policy with seeded jitter,
//                shared by the first connect and every reconnect
//   --max-reconnects  site: sessions to re-establish after peer loss
//
// Observability plane (both daemon modes; see docs/OBSERVABILITY.md):
//   --http-port  serve live read-only ops endpoints on this loopback port
//                (0 = ephemeral; the bound port is printed on stdout):
//                /metrics (Prometheus 0.0.4), /healthz (JSON), /alerts,
//                /flightrecorder (recent-event ring as JSONL)
//   --trace-sample=R  head-based trace sampling rate in [0, 1]; 1.0 keeps
//                the full byte-identical trace, lower rates drop unsampled
//                cascades/noise from the trace only (counters and the
//                audit/alert planes always see everything)       [1.0]
//   --flight-dump=PATH  where the fatal-signal (SIGSEGV/SIGABRT) handler
//                dumps the in-memory flight-recorder ring as JSONL
//                [sgm-flight-<role>.jsonl]
//   --alerts-out coordinator: run the online anomaly detector over the
//                per-cycle metric stream and append alert.* events to this
//                JSONL file (append + flush per alert, so the file
//                survives a SIGKILL mid-run)
//   --trace / --metrics-out work in both daemon modes; each process writes
//                its own per-process trace stamped with proc="coordinator"
//                or proc="site-<id>" plus the coordinator-issued trace
//                epoch, ready for `trace_inspect --merge`.
//
// Both daemon roles shut down gracefully on SIGTERM/SIGINT: the
// coordinator finishes the in-flight cycle, flushes a final checkpoint
// (when --checkpoint-dir is set), broadcasts kShutdown to every site and
// exits 0; a site daemon drains its session loop and exits 0 as if a
// kShutdown frame had arrived.
//
// Site daemons exit 0 only on a clean kShutdown; each failure mode has a
// distinct code (and a structured stderr line):
//   3 coordinator EOF   4 connect give-up   5 recv error
//   6 stream poisoned   7 send failed       8 poll error
//
// Every deployment-shape flag (--workload, --function, --sites,
// --threshold, --delta, --seed) must be identical across the coordinator
// and all site processes: sites regenerate their deterministic streams
// locally, only protocol messages cross the wire.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "obs/anomaly.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/telemetry.h"

#include "data/csv_stream.h"
#include "data/jester_like.h"
#include "data/reuters_like.h"
#include "data/synthetic.h"
#include "functions/chi_square.h"
#include "functions/entropy.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "functions/variance.h"
#include "gm/bernoulli_gm.h"
#include "gm/bgm.h"
#include "gm/cvgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/pgm.h"
#include "gm/sgm.h"
#include "runtime/checkpoint.h"
#include "runtime/coordinator_server.h"
#include "runtime/site_client.h"
#include "sim/network.h"

namespace sgm {
namespace {

struct Flags {
  std::string workload = "jester";
  std::string csv;
  std::string function = "linf";
  std::string protocol = "sgm";
  int sites = 500;
  double threshold = 0.0;
  bool threshold_set = false;
  double delta = 0.1;
  long cycles = 2000;
  std::uint64_t seed = 11;
  std::string trace_out;
  std::string metrics_out;
  // Daemon modes (socket runtime).
  int listen_port = -1;  ///< ≥ 0: run as coordinator daemon (0 = ephemeral)
  int site_id = -1;      ///< ≥ 0: run as site daemon
  std::string connect;   ///< [host:]port of the coordinator for --site
  std::string prom_out;
  std::string series_out;
  /// Coordinator straggler policy (see docs/RUNTIME.md): soft barrier
  /// deadline per cycle (0 = disabled), quarantine threshold in consecutive
  /// misses, and the per-peer bounded send queue (0 = synchronous writes).
  long barrier_deadline_ms = 0;
  int lagging_misses = 2;
  std::size_t send_queue_frames = 0;
  std::string checkpoint_dir;  ///< coordinator durability directory
  bool recover = false;        ///< restore from checkpoint_dir on start
  SocketRetryConfig socket_retry;  ///< site dial policy (first + re-connect)
  int max_reconnects = 8;
  int http_port = -1;      ///< ≥ 0: serve /metrics /healthz /alerts
  std::string alerts_out;  ///< coordinator: anomaly alert JSONL sink
  /// Head-based trace sampling rate (RuntimeConfig::trace_sample_rate).
  double trace_sample = 1.0;
  /// Fatal-signal flight-recorder dump path; empty derives a role-named
  /// default (sgm-flight-<role>.jsonl in the working directory).
  std::string flight_dump;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return false;
    }
    if (eq == std::string::npos) {
      // The only valueless flag; everything else is --key=value.
      if (arg == "--recover") {
        flags->recover = true;
        continue;
      }
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "workload") {
      flags->workload = value;
    } else if (key == "csv") {
      flags->csv = value;
    } else if (key == "function") {
      flags->function = value;
    } else if (key == "protocol") {
      flags->protocol = value;
    } else if (key == "sites") {
      flags->sites = std::atoi(value.c_str());
    } else if (key == "threshold") {
      flags->threshold = std::atof(value.c_str());
      flags->threshold_set = true;
    } else if (key == "delta") {
      flags->delta = std::atof(value.c_str());
    } else if (key == "cycles") {
      flags->cycles = std::atol(value.c_str());
    } else if (key == "seed") {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "trace") {
      flags->trace_out = value;
    } else if (key == "metrics-out") {
      flags->metrics_out = value;
    } else if (key == "listen") {
      flags->listen_port = std::atoi(value.c_str());
    } else if (key == "site") {
      flags->site_id = std::atoi(value.c_str());
    } else if (key == "connect") {
      flags->connect = value;
    } else if (key == "prom-out") {
      flags->prom_out = value;
    } else if (key == "series-out") {
      flags->series_out = value;
    } else if (key == "barrier-deadline-ms") {
      flags->barrier_deadline_ms = std::atol(value.c_str());
    } else if (key == "lagging-misses") {
      flags->lagging_misses = std::atoi(value.c_str());
    } else if (key == "send-queue-frames") {
      flags->send_queue_frames =
          static_cast<std::size_t>(std::atol(value.c_str()));
    } else if (key == "checkpoint-dir") {
      flags->checkpoint_dir = value;
    } else if (key == "recover") {
      flags->recover = value != "0" && value != "false";
    } else if (key == "connect-attempts") {
      flags->socket_retry.max_attempts = std::atoi(value.c_str());
    } else if (key == "connect-base-ms") {
      flags->socket_retry.base_backoff_ms = std::atol(value.c_str());
    } else if (key == "connect-max-ms") {
      flags->socket_retry.max_backoff_ms = std::atol(value.c_str());
    } else if (key == "max-reconnects") {
      flags->max_reconnects = std::atoi(value.c_str());
    } else if (key == "http-port") {
      flags->http_port = std::atoi(value.c_str());
    } else if (key == "alerts-out") {
      flags->alerts_out = value;
    } else if (key == "trace-sample") {
      flags->trace_sample = std::atof(value.c_str());
    } else if (key == "flight-dump") {
      flags->flight_dump = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
  }
  if (!flags->threshold_set) {
    std::fprintf(stderr, "--threshold is required\n");
    return false;
  }
  return true;
}

std::unique_ptr<StreamSource> MakeWorkload(const Flags& flags) {
  if (flags.workload == "jester") {
    JesterLikeConfig config;
    config.num_sites = flags.sites;
    config.seed = flags.seed;
    return std::make_unique<JesterLikeGenerator>(config);
  }
  if (flags.workload == "reuters") {
    ReutersLikeConfig config;
    config.num_sites = flags.sites;
    config.seed = flags.seed;
    return std::make_unique<ReutersLikeGenerator>(config);
  }
  if (flags.workload == "synthetic") {
    SyntheticDriftConfig config;
    config.num_sites = flags.sites;
    config.seed = flags.seed;
    return std::make_unique<SyntheticDriftGenerator>(config);
  }
  if (flags.workload == "csv") {
    auto result = CsvVectorStream::Load(flags.csv);
    if (!result.ok()) {
      std::fprintf(stderr, "CSV load failed: %s\n",
                   result.status().ToString().c_str());
      return nullptr;
    }
    return std::make_unique<CsvVectorStream>(std::move(result).ValueOrDie());
  }
  std::fprintf(stderr, "unknown workload: %s\n", flags.workload.c_str());
  return nullptr;
}

std::unique_ptr<MonitoredFunction> MakeFunction(const Flags& flags,
                                                const StreamSource& source) {
  const std::size_t dim = source.dim();
  if (flags.function == "linf") {
    return std::make_unique<LInfDistance>(Vector(dim));
  }
  if (flags.function == "jd") {
    return std::make_unique<JeffreyDivergence>(Vector(dim));
  }
  if (flags.function == "sj") return L2Norm::SelfJoinSize();
  if (flags.function == "l2") return std::make_unique<L2Norm>();
  if (flags.function == "chi2") {
    if (dim != 3) {
      std::fprintf(stderr, "chi2 needs 3-dimensional vectors (got %zu)\n",
                   dim);
      return nullptr;
    }
    return std::make_unique<ChiSquare>(200.0);
  }
  if (flags.function == "stdev") return CoordinateDispersion::StdDev();
  if (flags.function == "entropy") return std::make_unique<Entropy>();
  std::fprintf(stderr, "unknown function: %s\n", flags.function.c_str());
  return nullptr;
}

std::unique_ptr<ProtocolBase> MakeProtocol(const Flags& flags,
                                           const MonitoredFunction& f,
                                           const StreamSource& source) {
  const double step = source.max_step_norm();
  std::unique_ptr<ProtocolBase> protocol;
  if (flags.protocol == "gm") {
    protocol = std::make_unique<GeometricMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "bgm") {
    protocol =
        std::make_unique<BalancedGeometricMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "pgm") {
    protocol =
        std::make_unique<PredictionGeometricMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "sgm" || flags.protocol == "msgm") {
    SgmOptions options;
    options.delta = flags.delta;
    options.num_trials = flags.protocol == "msgm" ? 0 : 1;
    protocol = std::make_unique<SamplingGeometricMonitor>(f, flags.threshold,
                                                          step, options);
  } else if (flags.protocol == "bernoulli") {
    protocol = MakeBernoulliMonitor(f, flags.threshold, step, flags.delta);
  } else if (flags.protocol == "cvgm") {
    protocol =
        std::make_unique<ConvexSafeZoneMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "cvsgm") {
    CvsgmOptions options;
    options.delta = flags.delta;
    protocol = std::make_unique<CvSamplingMonitor>(f, flags.threshold, step,
                                                   options);
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", flags.protocol.c_str());
    return nullptr;
  }
  protocol->set_drift_norm_cap(source.max_drift_norm());
  return protocol;
}

// ── Socket-runtime daemon modes ──────────────────────────────────────────

/// SIGTERM/SIGINT → graceful shutdown. The handler is async-signal-safe:
/// it flips a sig_atomic_t flag (the coordinator's cycle loop polls it
/// between cycles) and, in the site role, calls the client's lock-free
/// RequestStop() so the session loop drains out as if kShutdown arrived.
volatile std::sig_atomic_t g_shutdown_requested = 0;
SiteClient* g_signal_client = nullptr;

void HandleTerminationSignal(int /*signo*/) {
  g_shutdown_requested = 1;
  if (g_signal_client != nullptr) g_signal_client->RequestStop();
}

void InstallTerminationHandlers() {
  std::signal(SIGTERM, HandleTerminationSignal);
  std::signal(SIGINT, HandleTerminationSignal);
}

/// Shared deployment configuration both tiers derive from the same flags:
/// any mismatch here would have the coordinator and sites monitoring
/// different queries, so everything comes from the workload + flags only.
RuntimeConfig MakeRuntimeConfig(const Flags& flags,
                                const StreamSource& source) {
  RuntimeConfig config;
  config.threshold = flags.threshold;
  config.delta = flags.delta;
  config.max_step_norm = source.max_step_norm();
  config.drift_norm_cap = source.max_drift_norm();
  config.seed = flags.seed;
  config.socket_retry = flags.socket_retry;
  config.trace_sample_rate = flags.trace_sample;
  return config;
}

/// Arms the always-on flight recorder for a daemon role: the process-wide
/// ring receives every recorded trace event, and a SIGSEGV/SIGABRT dumps it
/// to `flags.flight_dump` (or a role-derived default) as parseable JSONL.
void ArmFlightRecorder(const Flags& flags, Telemetry* telemetry,
                       const std::string& role) {
  FlightRecorder& flight = FlightRecorder::Instance();
  telemetry->trace.AttachFlightRecorder(&flight);
  const std::string path = flags.flight_dump.empty()
                               ? "sgm-flight-" + role + ".jsonl"
                               : flags.flight_dump;
  flight.InstallCrashDump(path);
}

/// Parses "--connect=[host:]port". Only loopback is supported, so the host
/// part (if any) is validated away rather than resolved.
int ParseConnectPort(const std::string& endpoint) {
  const auto colon = endpoint.rfind(':');
  const std::string port_str =
      colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
  if (colon != std::string::npos) {
    const std::string host = endpoint.substr(0, colon);
    if (host != "127.0.0.1" && host != "localhost") {
      std::fprintf(stderr, "--connect supports loopback only (got %s)\n",
                   host.c_str());
      return -1;
    }
  }
  const int port = std::atoi(port_str.c_str());
  return port > 0 ? port : -1;
}

/// Rewrites the Prometheus textfile atomically (write-then-rename), so a
/// scraping node-exporter never reads a torn snapshot.
bool WritePromFile(const Telemetry& telemetry, const std::string& path) {
  return AtomicWriteFile(path, [&telemetry](std::ostream& out) {
           telemetry.WritePrometheus(out);
         })
      .ok();
}

/// Registers the role-independent ops routes (/metrics, /alerts) and binds
/// the listener; the caller adds its role-specific /healthz first. Prints
/// the bound port on stdout so harnesses can scrape an ephemeral port.
bool StartOpsEndpoints(HttpExporter* http, const Telemetry* telemetry,
                       int port) {
  http->Route("/metrics", "text/plain; version=0.0.4; charset=utf-8",
              [telemetry] {
                std::ostringstream out;
                telemetry->WritePrometheus(out);
                return out.str();
              });
  http->Route("/alerts", "application/json", [telemetry] {
    return telemetry->anomaly != nullptr ? telemetry->anomaly->AlertsJson()
                                         : std::string("[]\n");
  });
  // On-demand postmortem window: the same JSONL the fatal-signal handler
  // would dump, served live (oldest event first).
  http->Route("/flightrecorder", "application/x-ndjson",
              [] { return FlightRecorder::Instance().DumpString(); });
  const Status status = http->Start(port);
  if (!status.ok()) {
    std::fprintf(stderr, "ops endpoints bind failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  std::printf("ops endpoints on 127.0.0.1:%d\n", http->port());
  std::fflush(stdout);
  return true;
}

int RunCoordinatorDaemon(const Flags& flags) {
  auto source = MakeWorkload(flags);
  if (source == nullptr) return 2;
  auto function = MakeFunction(flags, *source);
  if (function == nullptr) return 2;

  Telemetry telemetry;
  telemetry.trace.SetProcess("coordinator");
  ArmFlightRecorder(flags, &telemetry, "coordinator");
  if (!flags.series_out.empty()) telemetry.EnableTimeSeries();

  // A crashed previous incarnation may have died between writing the .tmp
  // and the rename; a stale .tmp would otherwise sit next to the live file
  // forever (and confuse textfile collectors that glob the directory).
  if (!flags.prom_out.empty()) RemoveStaleTempFile(flags.prom_out);
  if (!flags.series_out.empty()) RemoveStaleTempFile(flags.series_out);

  std::ofstream alerts_stream;
  if (!flags.alerts_out.empty()) {
    AnomalyDetectorConfig anomaly_config;
    anomaly_config.seed = flags.seed;
    telemetry.EnableAnomalyDetection(anomaly_config);
    // Append + flush-per-alert: a restarted incarnation continues the same
    // alert log, and a SIGKILL loses at most the alert being written.
    alerts_stream.open(flags.alerts_out, std::ios::app);
    if (!alerts_stream) {
      std::fprintf(stderr, "cannot open %s\n", flags.alerts_out.c_str());
      return 2;
    }
    telemetry.anomaly->AttachStream(&alerts_stream);
  }

  CoordinatorServerConfig config;
  config.port = flags.listen_port;
  config.num_sites = source->num_sites();
  config.barrier_deadline_ms = flags.barrier_deadline_ms;
  config.send_queue_frames = flags.send_queue_frames;
  config.runtime = MakeRuntimeConfig(flags, *source);
  config.runtime.telemetry = &telemetry;
  config.runtime.failure_detector.lagging_after_deadline_misses =
      flags.lagging_misses;

  std::unique_ptr<FileCheckpointStore> store;
  if (!flags.checkpoint_dir.empty()) {
    store = std::make_unique<FileCheckpointStore>(flags.checkpoint_dir);
    config.runtime.checkpoint_store = store.get();
  }
  if (flags.recover && store == nullptr) {
    std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
    return 2;
  }

  CoordinatorServer server(*function, config);
  if (!server.Listen()) {
    std::fprintf(stderr, "cannot listen on 127.0.0.1:%d\n",
                 flags.listen_port);
    return 2;
  }
  if (flags.recover) {
    if (!server.Recover()) {
      std::fprintf(stderr, "recovery failed: no decodable snapshot in %s\n",
                   flags.checkpoint_dir.c_str());
      return 4;
    }
    std::printf("coordinator recovered from %s: epoch %ld, resuming after "
                "cycle %ld\n",
                flags.checkpoint_dir.c_str(),
                static_cast<long>(server.Epoch()), server.CyclesRun() - 1);
  }
  HttpExporter http;
  if (flags.http_port >= 0) {
    http.Route("/healthz", "application/json",
               [&server] { return server.HealthJson(); });
    if (!StartOpsEndpoints(&http, &telemetry, flags.http_port)) return 2;
  }
  InstallTerminationHandlers();
  std::printf("coordinator listening on 127.0.0.1:%d, waiting for %d "
              "sites\n",
              server.port(), config.num_sites);
  std::fflush(stdout);
  if (!server.WaitForSites()) {
    std::fprintf(stderr, "timed out waiting for site registrations\n");
    return 1;
  }
  // Cycle 0 is the initialization sync; then flags.cycles update cycles.
  // A recovered incarnation completes the original schedule: it resumes
  // from the restored cycle counter instead of running --cycles anew.
  bool terminated_by_signal = false;
  for (long cycle = server.CyclesRun(); cycle <= flags.cycles; ++cycle) {
    if (g_shutdown_requested) {
      terminated_by_signal = true;
      break;
    }
    if (!server.RunCycle()) {
      std::fprintf(stderr, "cycle %ld: barrier timeout (site lost?)\n",
                   cycle);
      server.Shutdown();
      return 1;
    }
    if (!flags.prom_out.empty() &&
        !WritePromFile(telemetry, flags.prom_out)) {
      std::fprintf(stderr, "cannot write %s\n", flags.prom_out.c_str());
      server.Shutdown();
      return 2;
    }
  }
  if (terminated_by_signal) {
    // Graceful drain: persist the last completed cycle before the
    // kShutdown broadcast, so a --recover restart resumes exactly here.
    if (store != nullptr) server.FlushCheckpoint();
    std::printf("coordinator: termination signal — final checkpoint %s, "
                "shutting down after cycle %ld\n",
                store != nullptr ? "flushed" : "skipped (no --checkpoint-dir)",
                server.CyclesRun() - 1);
  }
  server.Shutdown();

  std::printf("cycles run            %12ld\n", server.CyclesRun());
  std::printf("paper messages        %12ld\n", server.PaperMessages());
  std::printf("  from sites          %12ld\n", server.PaperSiteMessages());
  std::printf("paper bytes           %12.0f\n", server.PaperBytes());
  std::printf("transport frames      %12ld\n",
              server.transport().transport_messages_sent());
  std::printf("transport bytes       %12.0f\n",
              server.transport().transport_bytes_sent());
  std::printf("full syncs            %12ld\n", server.FullSyncs());
  std::printf("partial resolutions   %12ld\n", server.PartialResolutions());
  std::printf("degraded syncs        %12ld\n", server.DegradedSyncs());
  std::printf("epoch                 %12ld\n",
              static_cast<long>(server.Epoch()));
  std::printf("final belief          %12s\n",
              server.BelievesAbove() ? "above" : "below");

  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    if (!out) return 2;
    telemetry.trace.WriteJsonl(out);
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) return 2;
    telemetry.WriteMetricsJson(out);
  }
  if (!flags.series_out.empty()) {
    const Status written =
        AtomicWriteFile(flags.series_out, [&telemetry](std::ostream& out) {
          telemetry.series->WriteJsonl(out);
        });
    if (!written.ok()) return 2;
  }
  return 0;
}

int RunSiteDaemon(const Flags& flags) {
  auto source = MakeWorkload(flags);
  if (source == nullptr) return 2;
  auto function = MakeFunction(flags, *source);
  if (function == nullptr) return 2;
  const int port = ParseConnectPort(flags.connect);
  if (port < 0) {
    std::fprintf(stderr, "--site needs --connect=[host:]port\n");
    return 2;
  }
  if (flags.site_id >= source->num_sites()) {
    std::fprintf(stderr, "--site=%d out of range (N=%d)\n", flags.site_id,
                 source->num_sites());
    return 2;
  }

  Telemetry telemetry;
  telemetry.trace.SetProcess("site-" + std::to_string(flags.site_id));
  ArmFlightRecorder(flags, &telemetry, "site-" + std::to_string(flags.site_id));

  SiteClientConfig config;
  config.site_id = flags.site_id;
  config.num_sites = source->num_sites();
  config.port = port;
  config.runtime = MakeRuntimeConfig(flags, *source);
  config.runtime.telemetry = &telemetry;
  config.max_reconnects = flags.max_reconnects;

  SiteClient client(*function, config);
  g_signal_client = &client;
  InstallTerminationHandlers();
  HttpExporter http;
  if (flags.http_port >= 0) {
    http.Route("/healthz", "application/json",
               [&client] { return client.HealthJson(); });
    if (!StartOpsEndpoints(&http, &telemetry, flags.http_port)) return 2;
  }
  // Per-process observability artifacts, written on every exit path: the
  // site's own trace (proc="site-N", coordinator epochs stamped as they
  // anchor) is one input file of `trace_inspect --merge`.
  const auto write_artifacts = [&]() -> bool {
    if (!flags.trace_out.empty()) {
      std::ofstream out(flags.trace_out);
      if (!out) return false;
      telemetry.trace.WriteJsonl(out);
    }
    if (!flags.metrics_out.empty()) {
      std::ofstream out(flags.metrics_out);
      if (!out) return false;
      telemetry.WriteMetricsJson(out);
    }
    return true;
  };
  if (!client.Connect()) {
    std::fprintf(stderr,
                 "site %d: exit reason=connect-give-up attempts=%d "
                 "endpoint=127.0.0.1:%d\n",
                 flags.site_id, flags.socket_retry.max_attempts, port);
    return 4;
  }
  // The site's stream is regenerated locally: every process runs the same
  // seeded generator and takes its own column, so the deployment observes
  // exactly the vectors the single-process driver would.
  std::vector<Vector> locals;
  long advanced = 0;
  const bool clean = client.Run([&](long cycle) {
    while (advanced <= cycle) {
      source->Advance(&locals);
      ++advanced;
    }
    return locals[static_cast<std::size_t>(flags.site_id)];
  });
  if (!write_artifacts()) return 2;
  if (clean) {
    std::printf("site %d: %ld cycles observed, clean shutdown "
                "(reconnects=%ld)\n",
                flags.site_id, client.cycles_observed(), client.reconnects());
    return 0;
  }
  // Structured abnormal-exit line: every silent failure mode gets a named
  // reason and a distinct exit code the supervisor can branch on.
  std::fprintf(stderr,
               "site %d: exit reason=%s reconnects=%ld cycles_observed=%ld\n",
               flags.site_id, SiteExitReasonName(client.exit_reason()),
               client.reconnects(), client.cycles_observed());
  switch (client.exit_reason()) {
    case SiteExitReason::kShutdown: return 0;  // unreachable when !clean
    case SiteExitReason::kCoordinatorEof: return 3;
    case SiteExitReason::kConnectGiveUp: return 4;
    case SiteExitReason::kRecvError: return 5;
    case SiteExitReason::kStreamPoisoned: return 6;
    case SiteExitReason::kSendFailed: return 7;
    case SiteExitReason::kPollError: return 8;
  }
  return 1;
}

int Run(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;
  if (flags.listen_port >= 0 && flags.site_id >= 0) {
    std::fprintf(stderr, "--listen and --site are mutually exclusive\n");
    return 2;
  }
  if (flags.listen_port >= 0) return RunCoordinatorDaemon(flags);
  if (flags.site_id >= 0) return RunSiteDaemon(flags);

  auto source = MakeWorkload(flags);
  if (source == nullptr) return 2;
  auto function = MakeFunction(flags, *source);
  if (function == nullptr) return 2;
  auto protocol = MakeProtocol(flags, *function, *source);
  if (protocol == nullptr) return 2;

  Telemetry telemetry;
  const bool want_telemetry =
      !flags.trace_out.empty() || !flags.metrics_out.empty();
  if (want_telemetry) protocol->set_telemetry(&telemetry);

  const RunResult r = Simulate(source.get(), protocol.get(), flags.cycles);
  const int n = source->num_sites();

  if (want_telemetry) {
    r.metrics.PublishTo(&telemetry.registry);
    if (!flags.trace_out.empty()) {
      std::ofstream out(flags.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", flags.trace_out.c_str());
        return 2;
      }
      telemetry.trace.WriteJsonl(out);
    }
    if (!flags.metrics_out.empty()) {
      std::ofstream out(flags.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", flags.metrics_out.c_str());
        return 2;
      }
      telemetry.WriteMetricsJson(out);
    }
  }

  std::printf("workload=%s function=%s protocol=%s N=%d T=%g delta=%g "
              "cycles=%ld\n\n",
              source->name().c_str(), function->name().c_str(),
              protocol->name().c_str(), n, flags.threshold, flags.delta,
              r.cycles);
  std::printf("total messages        %12ld\n", r.metrics.total_messages());
  std::printf("  from sites          %12ld\n", r.metrics.site_messages());
  std::printf("  from coordinator    %12ld\n",
              r.metrics.coordinator_messages());
  std::printf("total bytes           %12.0f\n", r.metrics.total_bytes());
  std::printf("per-site msgs/update  %12.5f\n",
              r.metrics.SiteMessagesPerUpdate(n));
  std::printf("full syncs            %12ld\n", r.metrics.full_syncs());
  std::printf("partial resolutions   %12ld\n",
              r.metrics.partial_resolutions());
  std::printf("1-d resolutions       %12ld\n",
              r.metrics.one_d_resolutions());
  std::printf("false positives       %12ld\n", r.metrics.false_positives());
  std::printf("false-negative cycles %12ld (rate %.5f)\n",
              r.metrics.false_negative_cycles(),
              static_cast<double>(r.metrics.false_negative_cycles()) /
                  static_cast<double>(r.cycles));
  std::printf("FN duration mode/mdn  %10ld / %.1f\n",
              r.metrics.FnDurationMode(), r.metrics.FnDurationMedian());
  std::printf("cycles above T (true) %12ld\n", r.true_crossing_cycles);
  std::printf("final belief          %12s\n",
              protocol->BelievesAbove() ? "above" : "below");
  return 0;
}

}  // namespace
}  // namespace sgm

int main(int argc, char** argv) { return sgm::Run(argc, argv); }
