// sgm_monitor — command-line experiment runner.
//
// Runs any protocol/function/workload combination of the library and prints
// the full metrics block, so ad-hoc comparisons don't require writing code:
//
//   sgm_monitor --workload=jester --function=linf --protocol=sgm \
//               --sites=500 --threshold=10 --cycles=2000 --delta=0.1
//   sgm_monitor --workload=csv --csv=trace.csv --function=l2 \
//               --protocol=gm --threshold=4
//
// Flags (all optional unless noted):
//   --workload   jester | reuters | synthetic | csv      [jester]
//   --csv        path for --workload=csv (cycle,site,x... rows)
//   --function   linf | jd | sj | l2 | chi2 | stdev | entropy  [linf]
//   --protocol   gm | bgm | pgm | sgm | msgm | bernoulli | cvgm | cvsgm [sgm]
//   --sites      number of sites N                        [500]
//   --threshold  T (required)
//   --delta      FN tolerance δ                           [0.1]
//   --cycles     update cycles                            [2000]
//   --seed       workload seed                            [11]
//   --trace      write the structured protocol trace (JSONL)
//   --metrics-out  write the metric-registry snapshot JSON

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "obs/telemetry.h"

#include "data/csv_stream.h"
#include "data/jester_like.h"
#include "data/reuters_like.h"
#include "data/synthetic.h"
#include "functions/chi_square.h"
#include "functions/entropy.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "functions/variance.h"
#include "gm/bernoulli_gm.h"
#include "gm/bgm.h"
#include "gm/cvgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/pgm.h"
#include "gm/sgm.h"
#include "sim/network.h"

namespace sgm {
namespace {

struct Flags {
  std::string workload = "jester";
  std::string csv;
  std::string function = "linf";
  std::string protocol = "sgm";
  int sites = 500;
  double threshold = 0.0;
  bool threshold_set = false;
  double delta = 0.1;
  long cycles = 2000;
  std::uint64_t seed = 11;
  std::string trace_out;
  std::string metrics_out;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "workload") {
      flags->workload = value;
    } else if (key == "csv") {
      flags->csv = value;
    } else if (key == "function") {
      flags->function = value;
    } else if (key == "protocol") {
      flags->protocol = value;
    } else if (key == "sites") {
      flags->sites = std::atoi(value.c_str());
    } else if (key == "threshold") {
      flags->threshold = std::atof(value.c_str());
      flags->threshold_set = true;
    } else if (key == "delta") {
      flags->delta = std::atof(value.c_str());
    } else if (key == "cycles") {
      flags->cycles = std::atol(value.c_str());
    } else if (key == "seed") {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "trace") {
      flags->trace_out = value;
    } else if (key == "metrics-out") {
      flags->metrics_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
  }
  if (!flags->threshold_set) {
    std::fprintf(stderr, "--threshold is required\n");
    return false;
  }
  return true;
}

std::unique_ptr<StreamSource> MakeWorkload(const Flags& flags) {
  if (flags.workload == "jester") {
    JesterLikeConfig config;
    config.num_sites = flags.sites;
    config.seed = flags.seed;
    return std::make_unique<JesterLikeGenerator>(config);
  }
  if (flags.workload == "reuters") {
    ReutersLikeConfig config;
    config.num_sites = flags.sites;
    config.seed = flags.seed;
    return std::make_unique<ReutersLikeGenerator>(config);
  }
  if (flags.workload == "synthetic") {
    SyntheticDriftConfig config;
    config.num_sites = flags.sites;
    config.seed = flags.seed;
    return std::make_unique<SyntheticDriftGenerator>(config);
  }
  if (flags.workload == "csv") {
    auto result = CsvVectorStream::Load(flags.csv);
    if (!result.ok()) {
      std::fprintf(stderr, "CSV load failed: %s\n",
                   result.status().ToString().c_str());
      return nullptr;
    }
    return std::make_unique<CsvVectorStream>(std::move(result).ValueOrDie());
  }
  std::fprintf(stderr, "unknown workload: %s\n", flags.workload.c_str());
  return nullptr;
}

std::unique_ptr<MonitoredFunction> MakeFunction(const Flags& flags,
                                                const StreamSource& source) {
  const std::size_t dim = source.dim();
  if (flags.function == "linf") {
    return std::make_unique<LInfDistance>(Vector(dim));
  }
  if (flags.function == "jd") {
    return std::make_unique<JeffreyDivergence>(Vector(dim));
  }
  if (flags.function == "sj") return L2Norm::SelfJoinSize();
  if (flags.function == "l2") return std::make_unique<L2Norm>();
  if (flags.function == "chi2") {
    if (dim != 3) {
      std::fprintf(stderr, "chi2 needs 3-dimensional vectors (got %zu)\n",
                   dim);
      return nullptr;
    }
    return std::make_unique<ChiSquare>(200.0);
  }
  if (flags.function == "stdev") return CoordinateDispersion::StdDev();
  if (flags.function == "entropy") return std::make_unique<Entropy>();
  std::fprintf(stderr, "unknown function: %s\n", flags.function.c_str());
  return nullptr;
}

std::unique_ptr<ProtocolBase> MakeProtocol(const Flags& flags,
                                           const MonitoredFunction& f,
                                           const StreamSource& source) {
  const double step = source.max_step_norm();
  std::unique_ptr<ProtocolBase> protocol;
  if (flags.protocol == "gm") {
    protocol = std::make_unique<GeometricMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "bgm") {
    protocol =
        std::make_unique<BalancedGeometricMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "pgm") {
    protocol =
        std::make_unique<PredictionGeometricMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "sgm" || flags.protocol == "msgm") {
    SgmOptions options;
    options.delta = flags.delta;
    options.num_trials = flags.protocol == "msgm" ? 0 : 1;
    protocol = std::make_unique<SamplingGeometricMonitor>(f, flags.threshold,
                                                          step, options);
  } else if (flags.protocol == "bernoulli") {
    protocol = MakeBernoulliMonitor(f, flags.threshold, step, flags.delta);
  } else if (flags.protocol == "cvgm") {
    protocol =
        std::make_unique<ConvexSafeZoneMonitor>(f, flags.threshold, step);
  } else if (flags.protocol == "cvsgm") {
    CvsgmOptions options;
    options.delta = flags.delta;
    protocol = std::make_unique<CvSamplingMonitor>(f, flags.threshold, step,
                                                   options);
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", flags.protocol.c_str());
    return nullptr;
  }
  protocol->set_drift_norm_cap(source.max_drift_norm());
  return protocol;
}

int Run(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  auto source = MakeWorkload(flags);
  if (source == nullptr) return 2;
  auto function = MakeFunction(flags, *source);
  if (function == nullptr) return 2;
  auto protocol = MakeProtocol(flags, *function, *source);
  if (protocol == nullptr) return 2;

  Telemetry telemetry;
  const bool want_telemetry =
      !flags.trace_out.empty() || !flags.metrics_out.empty();
  if (want_telemetry) protocol->set_telemetry(&telemetry);

  const RunResult r = Simulate(source.get(), protocol.get(), flags.cycles);
  const int n = source->num_sites();

  if (want_telemetry) {
    r.metrics.PublishTo(&telemetry.registry);
    if (!flags.trace_out.empty()) {
      std::ofstream out(flags.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", flags.trace_out.c_str());
        return 2;
      }
      telemetry.trace.WriteJsonl(out);
    }
    if (!flags.metrics_out.empty()) {
      std::ofstream out(flags.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", flags.metrics_out.c_str());
        return 2;
      }
      telemetry.WriteMetricsJson(out);
    }
  }

  std::printf("workload=%s function=%s protocol=%s N=%d T=%g delta=%g "
              "cycles=%ld\n\n",
              source->name().c_str(), function->name().c_str(),
              protocol->name().c_str(), n, flags.threshold, flags.delta,
              r.cycles);
  std::printf("total messages        %12ld\n", r.metrics.total_messages());
  std::printf("  from sites          %12ld\n", r.metrics.site_messages());
  std::printf("  from coordinator    %12ld\n",
              r.metrics.coordinator_messages());
  std::printf("total bytes           %12.0f\n", r.metrics.total_bytes());
  std::printf("per-site msgs/update  %12.5f\n",
              r.metrics.SiteMessagesPerUpdate(n));
  std::printf("full syncs            %12ld\n", r.metrics.full_syncs());
  std::printf("partial resolutions   %12ld\n",
              r.metrics.partial_resolutions());
  std::printf("1-d resolutions       %12ld\n",
              r.metrics.one_d_resolutions());
  std::printf("false positives       %12ld\n", r.metrics.false_positives());
  std::printf("false-negative cycles %12ld (rate %.5f)\n",
              r.metrics.false_negative_cycles(),
              static_cast<double>(r.metrics.false_negative_cycles()) /
                  static_cast<double>(r.cycles));
  std::printf("FN duration mode/mdn  %10ld / %.1f\n",
              r.metrics.FnDurationMode(), r.metrics.FnDurationMedian());
  std::printf("cycles above T (true) %12ld\n", r.true_crossing_cycles);
  std::printf("final belief          %12s\n",
              protocol->BelievesAbove() ? "above" : "below");
  return 0;
}

}  // namespace
}  // namespace sgm

int main(int argc, char** argv) { return sgm::Run(argc, argv); }
