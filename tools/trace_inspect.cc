// Inspector for JSONL protocol traces (the --trace output of sgm_monitor,
// dst_stress and bench_reliability).
//
// Modes (combine filters with any mode):
//   trace_inspect FILE                     per-category/name event summary
//   trace_inspect --validate FILE          schema-check every line; exit 1
//                                          on the first invalid line
//   trace_inspect --chrome=OUT FILE        convert to Chrome trace_event
//                                          JSON (chrome://tracing, Perfetto)
//   trace_inspect --spans FILE             reconstruct causal span trees:
//                                          one tree per sync cascade (or
//                                          rejoin grant), with per-span
//                                          message/byte cost and the
//                                          critical path; exit 1 on any
//                                          orphan span
//   trace_inspect --cat=C --name=N --actor=A --site=S
//                 --cycle-min=X --cycle-max=Y --cycles=A:B
//                                          print matching lines verbatim
//
// `--site=S` is the site-centric spelling of `--actor=S` (the coordinator
// is actor -1) and `--cycles=A:B` sets both cycle bounds at once; either
// side may be omitted (`--cycles=40:` = from cycle 40 on).
//
// Filters apply to the summary, --chrome conversion and --spans too, so
// e.g.
//   trace_inspect --cat=failure --chrome=fail.json trace.jsonl
// produces a timeline of just the failure-detector lifecycle.

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace {

struct Options {
  std::string file;
  std::string chrome_out;
  bool validate = false;
  bool spans = false;
  bool print_matches = false;  // set when any filter is given
  std::string cat;
  std::string name;
  int actor = INT_MIN;
  long cycle_min = LONG_MIN;
  long cycle_max = LONG_MAX;
};

bool ParseFlag(const std::string& arg, const char* flag, std::string* out) {
  const std::size_t len = std::strlen(flag);
  if (arg.rfind(flag, 0) != 0) return false;
  *out = arg.substr(len);
  return true;
}

/// Rebuilds a TraceEvent from one parsed JSONL line (already validated or
/// at least structurally JSON). Integral numbers round-trip as int args.
sgm::TraceEvent ToEvent(const sgm::JsonValue& value) {
  sgm::TraceEvent event;
  event.ts = static_cast<long>(value.NumberOr("ts", 0));
  event.cycle = static_cast<long>(value.NumberOr("cycle", 0));
  if (const sgm::JsonValue* cat = value.Find("cat")) {
    event.cat = cat->string_value();
  }
  if (const sgm::JsonValue* name = value.Find("name")) {
    event.name = name->string_value();
  }
  event.actor = static_cast<int>(value.NumberOr("actor", 0));
  if (const sgm::JsonValue* args = value.Find("args")) {
    for (const auto& [key, arg] : args->object()) {
      if (arg.is_string()) {
        event.args.emplace_back(key, arg.string_value());
      } else if (arg.is_number()) {
        const double number = arg.number_value();
        const auto as_int = static_cast<std::int64_t>(number);
        if (static_cast<double>(as_int) == number) {
          event.args.emplace_back(key, as_int);
        } else {
          event.args.emplace_back(key, number);
        }
      }
    }
  }
  return event;
}

bool Matches(const Options& options, const sgm::TraceEvent& event) {
  if (!options.cat.empty() && event.cat != options.cat) return false;
  if (!options.name.empty() && event.name != options.name) return false;
  if (options.actor != INT_MIN && event.actor != options.actor) return false;
  return event.cycle >= options.cycle_min && event.cycle <= options.cycle_max;
}

const sgm::TraceArg* FindArg(const sgm::TraceEvent& event, const char* key) {
  for (const sgm::TraceArg& arg : event.args) {
    if (arg.key == key) return &arg;
  }
  return nullptr;
}

std::int64_t IntArg(const sgm::TraceEvent& event, const char* key) {
  const sgm::TraceArg* arg = FindArg(event, key);
  if (arg == nullptr || arg->kind != sgm::TraceArg::Kind::kInt) return 0;
  return arg->int_value;
}

std::string StringArg(const sgm::TraceEvent& event, const char* key) {
  const sgm::TraceArg* arg = FindArg(event, key);
  if (arg == nullptr || arg->kind != sgm::TraceArg::Kind::kString) return "";
  return arg->string_value;
}

/// One node of a reconstructed span tree. Spans are minted by the
/// coordinator as logical counters; a node exists for every distinct span
/// id referenced anywhere in the trace (a broadcast span, for instance, is
/// known only through its msg_send events).
struct SpanNode {
  std::int64_t id = 0;
  std::int64_t parent = 0;  // 0 = root (sync cascade or rejoin grant)
  std::string label;        // first event name that carried the span
  std::string trigger;      // sync_cycle_begin only
  long first_ts = LONG_MAX;
  long last_ts = LONG_MIN;
  long first_cycle = LONG_MAX;
  long last_cycle = LONG_MIN;
  long events = 0;
  long messages = 0;  // msg_send + retransmit events on this span
  long long bytes = 0;
  std::vector<std::int64_t> children;
};

struct SpanTotals {
  long spans = 0;
  long messages = 0;
  long long bytes = 0;
  long last_ts = LONG_MIN;
};

SpanTotals SubtreeTotals(const std::map<std::int64_t, SpanNode>& spans,
                         std::int64_t id) {
  const SpanNode& node = spans.at(id);
  SpanTotals totals;
  totals.spans = 1;
  totals.messages = node.messages;
  totals.bytes = node.bytes;
  totals.last_ts = node.last_ts;
  for (const std::int64_t child : node.children) {
    const SpanTotals sub = SubtreeTotals(spans, child);
    totals.spans += sub.spans;
    totals.messages += sub.messages;
    totals.bytes += sub.bytes;
    totals.last_ts = std::max(totals.last_ts, sub.last_ts);
  }
  return totals;
}

void PrintSubtree(const std::map<std::int64_t, SpanNode>& spans,
                  std::int64_t id, int depth) {
  const SpanNode& node = spans.at(id);
  std::printf("%*sspan %lld %s: %ld events, %ld msgs, %lld bytes,"
              " ts %ld..%ld\n",
              2 + 2 * depth, "", static_cast<long long>(node.id),
              node.label.c_str(), node.events, node.messages, node.bytes,
              node.first_ts, node.last_ts);
  for (const std::int64_t child : node.children) {
    PrintSubtree(spans, child, depth + 1);
  }
}

/// Reconstructs the span forest from the filtered events and prints one
/// block per root span (a sync cascade or a rejoin grant): its subtree with
/// per-span message/byte cost, plus the critical path — the root-to-leaf
/// chain whose subtree finishes last in logical time. Returns 1 (and lists
/// the offenders) if any span references a parent that never appears as a
/// span anywhere in the trace: an orphan means the cascade's causal chain
/// was broken, which a complete trace never exhibits.
int RunSpanReport(const std::string& file,
                  const std::vector<sgm::TraceEvent>& events) {
  std::map<std::int64_t, SpanNode> spans;
  long span_events = 0;
  for (const sgm::TraceEvent& event : events) {
    const std::int64_t id = IntArg(event, "span");
    if (id == 0) continue;
    ++span_events;
    SpanNode& node = spans[id];
    node.id = id;
    if (node.label.empty()) {
      node.label = event.name == "msg_send" ? "send:" + StringArg(event, "type")
                                            : event.name;
    }
    if (event.name == "sync_cycle_begin") {
      node.label = "sync_cycle";
      node.trigger = StringArg(event, "trigger");
    }
    const std::int64_t parent = IntArg(event, "parent");
    if (parent != 0) node.parent = parent;
    node.first_ts = std::min(node.first_ts, event.ts);
    node.last_ts = std::max(node.last_ts, event.ts);
    node.first_cycle = std::min(node.first_cycle, event.cycle);
    node.last_cycle = std::max(node.last_cycle, event.cycle);
    node.events += 1;
    if (const sgm::TraceArg* bytes = FindArg(event, "bytes")) {
      node.messages += 1;
      node.bytes += bytes->int_value;
    }
  }

  // Link children; collect orphans (parent id never seen as a span).
  std::vector<const SpanNode*> orphans;
  for (auto& [id, node] : spans) {
    if (node.parent == 0) continue;
    auto parent = spans.find(node.parent);
    if (parent == spans.end()) {
      orphans.push_back(&node);
    } else {
      parent->second.children.push_back(id);
    }
  }

  long roots = 0;
  long cascades = 0;
  for (const auto& [id, node] : spans) {
    if (node.parent != 0) continue;
    ++roots;
    if (!node.trigger.empty()) ++cascades;
    const SpanTotals totals = SubtreeTotals(spans, id);
    std::printf("root span %lld [%s%s%s] cycles %ld..%ld:"
                " %ld spans, %ld msgs, %lld bytes, ts %ld..%ld\n",
                static_cast<long long>(id), node.label.c_str(),
                node.trigger.empty() ? "" : " trigger=",
                node.trigger.c_str(), node.first_cycle, node.last_cycle,
                totals.spans, totals.messages, totals.bytes, node.first_ts,
                totals.last_ts);
    for (const std::int64_t child : node.children) {
      PrintSubtree(spans, child, 0);
    }
    // Critical path: follow, from the root, the child whose subtree ends
    // latest; stop when the current span itself outlives every child's
    // subtree. With logical timestamps this is the chain of phases that
    // determined when the cascade completed.
    std::printf("  critical path:");
    std::int64_t at = id;
    for (;;) {
      const SpanNode& here = spans.at(at);
      std::printf(" %lld(%s)", static_cast<long long>(at),
                  here.label.c_str());
      std::int64_t next = 0;
      long next_end = here.last_ts;
      for (const std::int64_t child : here.children) {
        const long end = SubtreeTotals(spans, child).last_ts;
        if (end > next_end) {
          next_end = end;
          next = child;
        }
      }
      if (next == 0) break;
      std::printf(" ->");
      at = next;
    }
    std::printf(", ends ts %ld\n", totals.last_ts);
  }

  std::printf("%s: %zu spans, %ld roots (%ld sync cascades), %ld span"
              " events, %zu orphans\n",
              file.c_str(), spans.size(), roots, cascades, span_events,
              orphans.size());
  for (const SpanNode* orphan : orphans) {
    std::printf("  orphan span %lld (%s): parent %lld never appears as a"
                " span\n",
                static_cast<long long>(orphan->id), orphan->label.c_str(),
                static_cast<long long>(orphan->parent));
  }
  return orphans.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--validate") {
      options.validate = true;
    } else if (arg == "--spans") {
      options.spans = true;
    } else if (ParseFlag(arg, "--chrome=", &options.chrome_out)) {
    } else if (ParseFlag(arg, "--cat=", &options.cat)) {
      options.print_matches = true;
    } else if (ParseFlag(arg, "--name=", &options.name)) {
      options.print_matches = true;
    } else if (ParseFlag(arg, "--actor=", &value) ||
               ParseFlag(arg, "--site=", &value)) {
      options.actor = std::atoi(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycle-min=", &value)) {
      options.cycle_min = std::atol(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycle-max=", &value)) {
      options.cycle_max = std::atol(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycles=", &value)) {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--cycles expects A:B (either side optional)\n");
        return 2;
      }
      const std::string lo = value.substr(0, colon);
      const std::string hi = value.substr(colon + 1);
      if (!lo.empty()) options.cycle_min = std::atol(lo.c_str());
      if (!hi.empty()) options.cycle_max = std::atol(hi.c_str());
      options.print_matches = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (options.file.empty()) {
      options.file = arg;
    } else {
      std::fprintf(stderr, "multiple input files given\n");
      return 2;
    }
  }
  if (options.file.empty()) {
    std::fprintf(stderr,
                 "usage: trace_inspect [--validate] [--spans] [--chrome=OUT]"
                 " [--cat=C] [--name=N] [--actor=A] [--site=S]"
                 " [--cycle-min=X] [--cycle-max=Y] [--cycles=A:B] FILE\n");
    return 2;
  }

  std::ifstream in(options.file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", options.file.c_str());
    return 1;
  }

  // Single pass: validate (optionally), parse, filter, accumulate.
  std::vector<sgm::TraceEvent> events;
  std::map<std::string, std::map<std::string, long>> by_cat_name;
  std::set<int> actors;
  long line_number = 0;
  long total_lines = 0;
  long min_cycle = LONG_MAX;
  long max_cycle = LONG_MIN;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++total_lines;
    if (options.validate) {
      std::string error;
      if (!sgm::ValidateTraceJsonLine(line, &error)) {
        std::fprintf(stderr, "%s:%ld: invalid event: %s\n",
                     options.file.c_str(), line_number, error.c_str());
        return 1;
      }
    }
    auto parsed = sgm::JsonValue::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s:%ld: not JSON: %s\n", options.file.c_str(),
                   line_number, parsed.status().message().c_str());
      return 1;
    }
    sgm::TraceEvent event = ToEvent(parsed.ValueOrDie());
    if (!Matches(options, event)) continue;
    by_cat_name[event.cat][event.name] += 1;
    actors.insert(event.actor);
    min_cycle = std::min(min_cycle, event.cycle);
    max_cycle = std::max(max_cycle, event.cycle);
    if (options.print_matches && options.chrome_out.empty() &&
        !options.spans) {
      std::printf("%s\n", line.c_str());
    }
    if (!options.chrome_out.empty() || options.spans) {
      events.push_back(std::move(event));
    }
  }

  if (options.spans) {
    return RunSpanReport(options.file, events);
  }

  if (!options.chrome_out.empty()) {
    // Replay the (filtered) events through a fresh log so WriteChromeTrace
    // handles the formatting; Emit re-stamps ts sequentially, preserving
    // the original order on the chrome timeline.
    sgm::TraceLog log;
    std::ofstream out(options.chrome_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", options.chrome_out.c_str());
      return 1;
    }
    for (sgm::TraceEvent& event : events) {
      log.SetCycle(event.cycle);
      log.Emit(event.cat, event.name, event.actor, std::move(event.args));
    }
    log.WriteChromeTrace(out);
    std::printf("wrote %zu events to %s\n", events.size(),
                options.chrome_out.c_str());
    return 0;
  }

  if (options.print_matches) return 0;

  // Summary mode.
  long matched = 0;
  for (const auto& [cat, names] : by_cat_name) {
    for (const auto& [name, count] : names) matched += count;
  }
  std::printf("%s: %ld events (%ld lines)\n", options.file.c_str(), matched,
              total_lines);
  if (matched == 0) {
    if (options.validate) std::printf("validation: OK\n");
    return 0;
  }
  std::printf("cycles %ld..%ld, %zu actors\n", min_cycle, max_cycle,
              actors.size());
  for (const auto& [cat, names] : by_cat_name) {
    long cat_total = 0;
    for (const auto& [name, count] : names) cat_total += count;
    std::printf("  %-12s %6ld\n", cat.c_str(), cat_total);
    for (const auto& [name, count] : names) {
      std::printf("    %-24s %6ld\n", name.c_str(), count);
    }
  }
  if (options.validate) std::printf("validation: OK\n");
  return 0;
}
