// Inspector for JSONL protocol traces (the --trace output of sgm_monitor,
// dst_stress and bench_reliability).
//
// Modes (combine filters with any mode):
//   trace_inspect FILE                     per-category/name event summary
//   trace_inspect --validate FILE          schema-check every line; exit 1
//                                          on the first invalid line
//   trace_inspect --chrome=OUT FILE        convert to Chrome trace_event
//                                          JSON (chrome://tracing, Perfetto)
//   trace_inspect --spans FILE             reconstruct causal span trees:
//                                          one tree per sync cascade (or
//                                          rejoin grant), with per-span
//                                          message/byte cost and the
//                                          critical path; exit 1 on any
//                                          orphan span
//   trace_inspect --merge FILE...         join per-process trace files
//                                          (pass the coordinator's FIRST)
//                                          into one causally ordered
//                                          timeline; prints the merged
//                                          span-forest summary and exits 1
//                                          on any orphan span. Add
//                                          --out=MERGED.jsonl to write the
//                                          merged timeline, --validate to
//                                          schema-check every input line,
//                                          --spans for the full per-root
//                                          report over the merged forest.
//   trace_inspect --cat=C --name=N --actor=A --site=S
//                 --cycle-min=X --cycle-max=Y --cycles=A:B
//                                          print matching lines verbatim
//
// `--site=S` is the site-centric spelling of `--actor=S` (the coordinator
// is actor -1) and `--cycles=A:B` sets both cycle bounds at once; either
// side may be omitted (`--cycles=40:` = from cycle 40 on).
//
// Filters apply to the summary, --chrome conversion and --spans too, so
// e.g.
//   trace_inspect --cat=failure --chrome=fail.json trace.jsonl
// produces a timeline of just the failure-detector lifecycle.

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_merge.h"

namespace {

struct Options {
  std::string file;
  std::vector<std::string> merge_files;
  std::string chrome_out;
  std::string merge_out;
  bool merge = false;
  bool validate = false;
  bool spans = false;
  bool print_matches = false;  // set when any filter is given
  std::string cat;
  std::string name;
  int actor = INT_MIN;
  long cycle_min = LONG_MIN;
  long cycle_max = LONG_MAX;
};

bool ParseFlag(const std::string& arg, const char* flag, std::string* out) {
  const std::size_t len = std::strlen(flag);
  if (arg.rfind(flag, 0) != 0) return false;
  *out = arg.substr(len);
  return true;
}

bool Matches(const Options& options, const sgm::TraceEvent& event) {
  if (!options.cat.empty() && event.cat != options.cat) return false;
  if (!options.name.empty() && event.name != options.name) return false;
  if (options.actor != INT_MIN && event.actor != options.actor) return false;
  return event.cycle >= options.cycle_min && event.cycle <= options.cycle_max;
}

const sgm::TraceArg* FindArg(const sgm::TraceEvent& event, const char* key) {
  for (const sgm::TraceArg& arg : event.args) {
    if (arg.key == key) return &arg;
  }
  return nullptr;
}

std::int64_t IntArg(const sgm::TraceEvent& event, const char* key) {
  const sgm::TraceArg* arg = FindArg(event, key);
  if (arg == nullptr || arg->kind != sgm::TraceArg::Kind::kInt) return 0;
  return arg->int_value;
}

std::string StringArg(const sgm::TraceEvent& event, const char* key) {
  const sgm::TraceArg* arg = FindArg(event, key);
  if (arg == nullptr || arg->kind != sgm::TraceArg::Kind::kString) return "";
  return arg->string_value;
}

/// One node of a reconstructed span tree. Spans are minted by the
/// coordinator as logical counters; a node exists for every distinct span
/// id referenced anywhere in the trace (a broadcast span, for instance, is
/// known only through its msg_send events).
struct SpanNode {
  std::int64_t id = 0;
  std::int64_t parent = 0;  // 0 = root (sync cascade or rejoin grant)
  std::string label;        // first event name that carried the span
  std::string trigger;      // sync_cycle_begin only
  long first_ts = LONG_MAX;
  long last_ts = LONG_MIN;
  long first_cycle = LONG_MAX;
  long last_cycle = LONG_MIN;
  long events = 0;
  long messages = 0;  // msg_send + retransmit events on this span
  long long bytes = 0;
  std::vector<std::int64_t> children;
};

struct SpanTotals {
  long spans = 0;
  long messages = 0;
  long long bytes = 0;
  long last_ts = LONG_MIN;
};

SpanTotals SubtreeTotals(const std::map<std::int64_t, SpanNode>& spans,
                         std::int64_t id) {
  const SpanNode& node = spans.at(id);
  SpanTotals totals;
  totals.spans = 1;
  totals.messages = node.messages;
  totals.bytes = node.bytes;
  totals.last_ts = node.last_ts;
  for (const std::int64_t child : node.children) {
    const SpanTotals sub = SubtreeTotals(spans, child);
    totals.spans += sub.spans;
    totals.messages += sub.messages;
    totals.bytes += sub.bytes;
    totals.last_ts = std::max(totals.last_ts, sub.last_ts);
  }
  return totals;
}

void PrintSubtree(const std::map<std::int64_t, SpanNode>& spans,
                  std::int64_t id, int depth) {
  const SpanNode& node = spans.at(id);
  std::printf("%*sspan %lld %s: %ld events, %ld msgs, %lld bytes,"
              " ts %ld..%ld\n",
              2 + 2 * depth, "", static_cast<long long>(node.id),
              node.label.c_str(), node.events, node.messages, node.bytes,
              node.first_ts, node.last_ts);
  for (const std::int64_t child : node.children) {
    PrintSubtree(spans, child, depth + 1);
  }
}

/// Reconstructs the span forest from the filtered events and prints one
/// block per root span (a sync cascade or a rejoin grant): its subtree with
/// per-span message/byte cost, plus the critical path — the root-to-leaf
/// chain whose subtree finishes last in logical time. Returns 1 (and lists
/// the offenders) if any span references a parent that never appears as a
/// span anywhere in the trace: an orphan means the cascade's causal chain
/// was broken, which a complete trace never exhibits.
int RunSpanReport(const std::string& file,
                  const std::vector<sgm::TraceEvent>& events) {
  std::map<std::int64_t, SpanNode> spans;
  long span_events = 0;
  for (const sgm::TraceEvent& event : events) {
    const std::int64_t id = IntArg(event, "span");
    if (id == 0) continue;
    ++span_events;
    SpanNode& node = spans[id];
    node.id = id;
    if (node.label.empty()) {
      node.label = event.name == "msg_send" ? "send:" + StringArg(event, "type")
                                            : event.name;
    }
    if (event.name == "sync_cycle_begin") {
      node.label = "sync_cycle";
      node.trigger = StringArg(event, "trigger");
    }
    const std::int64_t parent = IntArg(event, "parent");
    if (parent != 0) node.parent = parent;
    node.first_ts = std::min(node.first_ts, event.ts);
    node.last_ts = std::max(node.last_ts, event.ts);
    node.first_cycle = std::min(node.first_cycle, event.cycle);
    node.last_cycle = std::max(node.last_cycle, event.cycle);
    node.events += 1;
    if (const sgm::TraceArg* bytes = FindArg(event, "bytes")) {
      node.messages += 1;
      node.bytes += bytes->int_value;
    }
  }

  // Link children; collect orphans (parent id never seen as a span).
  std::vector<const SpanNode*> orphans;
  for (auto& [id, node] : spans) {
    if (node.parent == 0) continue;
    auto parent = spans.find(node.parent);
    if (parent == spans.end()) {
      orphans.push_back(&node);
    } else {
      parent->second.children.push_back(id);
    }
  }

  long roots = 0;
  long cascades = 0;
  for (const auto& [id, node] : spans) {
    if (node.parent != 0) continue;
    ++roots;
    if (!node.trigger.empty()) ++cascades;
    const SpanTotals totals = SubtreeTotals(spans, id);
    std::printf("root span %lld [%s%s%s] cycles %ld..%ld:"
                " %ld spans, %ld msgs, %lld bytes, ts %ld..%ld\n",
                static_cast<long long>(id), node.label.c_str(),
                node.trigger.empty() ? "" : " trigger=",
                node.trigger.c_str(), node.first_cycle, node.last_cycle,
                totals.spans, totals.messages, totals.bytes, node.first_ts,
                totals.last_ts);
    for (const std::int64_t child : node.children) {
      PrintSubtree(spans, child, 0);
    }
    // Critical path: follow, from the root, the child whose subtree ends
    // latest; stop when the current span itself outlives every child's
    // subtree. With logical timestamps this is the chain of phases that
    // determined when the cascade completed.
    std::printf("  critical path:");
    std::int64_t at = id;
    for (;;) {
      const SpanNode& here = spans.at(at);
      std::printf(" %lld(%s)", static_cast<long long>(at),
                  here.label.c_str());
      std::int64_t next = 0;
      long next_end = here.last_ts;
      for (const std::int64_t child : here.children) {
        const long end = SubtreeTotals(spans, child).last_ts;
        if (end > next_end) {
          next_end = end;
          next = child;
        }
      }
      if (next == 0) break;
      std::printf(" ->");
      at = next;
    }
    std::printf(", ends ts %ld\n", totals.last_ts);
  }

  std::printf("%s: %zu spans, %ld roots (%ld sync cascades), %ld span"
              " events, %zu orphans\n",
              file.c_str(), spans.size(), roots, cascades, span_events,
              orphans.size());
  for (const SpanNode* orphan : orphans) {
    std::printf("  orphan span %lld (%s): parent %lld never appears as a"
                " span\n",
                static_cast<long long>(orphan->id), orphan->label.c_str(),
                static_cast<long long>(orphan->parent));
  }
  return orphans.empty() ? 0 : 1;
}

/// "out/site0.trace.jsonl" → "site0": the fallback process label for
/// pre-stamping trace files, keyed off the filename.
std::string ProcFromFilename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// --merge: load every per-process file, join them into one causally
/// ordered timeline (see obs/trace_merge.h for the ordering argument),
/// optionally write it out, and summarize the merged span forest. Orphan
/// spans — a causal chain broken *across* processes — exit 1.
int RunMerge(const Options& options) {
  std::vector<std::vector<sgm::TraceEvent>> logs;
  for (const std::string& file : options.merge_files) {
    std::vector<sgm::TraceEvent> events;
    std::string warning;
    const sgm::Status loaded = sgm::LoadTraceJsonlTolerant(
        file, ProcFromFilename(file), options.validate, &events, &warning);
    if (!loaded.ok()) {
      // A chaos run's artifact set legitimately contains files from
      // processes killed before their first flush — skip those with a
      // warning instead of refusing the whole merge. Mid-file corruption
      // still fails the load above and the merge with it.
      if (loaded.code() == sgm::StatusCode::kNotFound) {
        std::fprintf(stderr, "warning: %s: skipped (%s)\n", file.c_str(),
                     loaded.message().c_str());
        continue;
      }
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   loaded.message().c_str());
      return 1;
    }
    if (!warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", warning.c_str());
    }
    if (events.empty()) {
      std::fprintf(stderr, "warning: %s: no events (empty or torn file)\n",
                   file.c_str());
      continue;
    }
    std::vector<sgm::TraceEvent> kept;
    for (sgm::TraceEvent& event : events) {
      if (Matches(options, event)) kept.push_back(std::move(event));
    }
    logs.push_back(std::move(kept));
  }
  const std::vector<sgm::TraceEvent> merged =
      sgm::MergeTraceTimelines(std::move(logs));

  if (!options.merge_out.empty()) {
    std::ofstream out(options.merge_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", options.merge_out.c_str());
      return 1;
    }
    for (const sgm::TraceEvent& event : merged) {
      sgm::TraceLog::AppendEventJson(event, out);
      out << "\n";
    }
    std::printf("wrote %zu merged events to %s\n", merged.size(),
                options.merge_out.c_str());
  }

  if (options.spans) {
    const int rc = RunSpanReport("merged", merged);
    if (rc != 0) return rc;
  }

  const sgm::SpanForestSummary forest = sgm::SummarizeSpanForest(merged);
  std::printf("merged %zu files: %zu events, %ld spans, %ld roots,"
              " %ld cross-process spans\n",
              options.merge_files.size(), merged.size(), forest.spans,
              forest.roots, forest.cross_process_spans);
  for (const auto& root : forest.root_details) {
    std::printf("  root %lld [%s%s%s]: %ld spans, %ld events, procs",
                static_cast<long long>(root.span), root.label.c_str(),
                root.trigger.empty() ? "" : " trigger=",
                root.trigger.c_str(), root.spans, root.events);
    for (const std::string& proc : root.procs) {
      std::printf(" %s", proc.c_str());
    }
    std::printf(", critical path via");
    for (const std::string& proc : root.critical_path_procs) {
      std::printf(" %s", proc.c_str());
    }
    std::printf("\n");
  }
  for (const std::string& orphan : forest.orphans) {
    std::printf("  orphan: %s\n", orphan.c_str());
  }
  if (!forest.orphans.empty()) return 1;
  if (options.validate) std::printf("validation: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--validate") {
      options.validate = true;
    } else if (arg == "--spans") {
      options.spans = true;
    } else if (arg == "--merge") {
      options.merge = true;
    } else if (ParseFlag(arg, "--out=", &options.merge_out)) {
    } else if (ParseFlag(arg, "--chrome=", &options.chrome_out)) {
    } else if (ParseFlag(arg, "--cat=", &options.cat)) {
      options.print_matches = true;
    } else if (ParseFlag(arg, "--name=", &options.name)) {
      options.print_matches = true;
    } else if (ParseFlag(arg, "--actor=", &value) ||
               ParseFlag(arg, "--site=", &value)) {
      options.actor = std::atoi(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycle-min=", &value)) {
      options.cycle_min = std::atol(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycle-max=", &value)) {
      options.cycle_max = std::atol(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycles=", &value)) {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--cycles expects A:B (either side optional)\n");
        return 2;
      }
      const std::string lo = value.substr(0, colon);
      const std::string hi = value.substr(colon + 1);
      if (!lo.empty()) options.cycle_min = std::atol(lo.c_str());
      if (!hi.empty()) options.cycle_max = std::atol(hi.c_str());
      options.print_matches = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (options.merge) {
      options.merge_files.push_back(arg);
    } else if (options.file.empty()) {
      options.file = arg;
    } else {
      std::fprintf(stderr,
                   "multiple input files given (use --merge, coordinator"
                   " file first)\n");
      return 2;
    }
  }
  if (options.merge) {
    if (!options.file.empty()) {
      options.merge_files.insert(options.merge_files.begin(), options.file);
    }
    if (options.merge_files.empty()) {
      std::fprintf(stderr,
                   "usage: trace_inspect --merge [--validate] [--spans]"
                   " [--out=MERGED] COORD_FILE SITE_FILE...\n");
      return 2;
    }
    return RunMerge(options);
  }
  if (options.file.empty()) {
    std::fprintf(stderr,
                 "usage: trace_inspect [--validate] [--spans] [--chrome=OUT]"
                 " [--merge FILE...] [--cat=C] [--name=N] [--actor=A]"
                 " [--site=S] [--cycle-min=X] [--cycle-max=Y]"
                 " [--cycles=A:B] FILE\n");
    return 2;
  }

  std::ifstream in(options.file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", options.file.c_str());
    return 1;
  }

  // Single pass: validate (optionally), parse, filter, accumulate.
  std::vector<sgm::TraceEvent> events;
  std::map<std::string, std::map<std::string, long>> by_cat_name;
  std::set<int> actors;
  long line_number = 0;
  long total_lines = 0;
  long min_cycle = LONG_MAX;
  long max_cycle = LONG_MIN;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++total_lines;
    if (options.validate) {
      std::string error;
      if (!sgm::ValidateTraceJsonLine(line, &error)) {
        std::fprintf(stderr, "%s:%ld: invalid event: %s\n",
                     options.file.c_str(), line_number, error.c_str());
        return 1;
      }
    }
    sgm::TraceEvent event;
    std::string parse_error;
    if (!sgm::ParseTraceEventLine(line, &event, &parse_error)) {
      std::fprintf(stderr, "%s:%ld: not JSON: %s\n", options.file.c_str(),
                   line_number, parse_error.c_str());
      return 1;
    }
    if (!Matches(options, event)) continue;
    by_cat_name[event.cat][event.name] += 1;
    actors.insert(event.actor);
    min_cycle = std::min(min_cycle, event.cycle);
    max_cycle = std::max(max_cycle, event.cycle);
    if (options.print_matches && options.chrome_out.empty() &&
        !options.spans) {
      std::printf("%s\n", line.c_str());
    }
    if (!options.chrome_out.empty() || options.spans) {
      events.push_back(std::move(event));
    }
  }

  if (options.spans) {
    return RunSpanReport(options.file, events);
  }

  if (!options.chrome_out.empty()) {
    // Replay the (filtered) events through a fresh log so WriteChromeTrace
    // handles the formatting; Emit re-stamps ts sequentially, preserving
    // the original order on the chrome timeline.
    sgm::TraceLog log;
    std::ofstream out(options.chrome_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", options.chrome_out.c_str());
      return 1;
    }
    for (sgm::TraceEvent& event : events) {
      log.SetCycle(event.cycle);
      log.Emit(event.cat, event.name, event.actor, std::move(event.args));
    }
    log.WriteChromeTrace(out);
    std::printf("wrote %zu events to %s\n", events.size(),
                options.chrome_out.c_str());
    return 0;
  }

  if (options.print_matches) return 0;

  // Summary mode.
  long matched = 0;
  for (const auto& [cat, names] : by_cat_name) {
    for (const auto& [name, count] : names) matched += count;
  }
  std::printf("%s: %ld events (%ld lines)\n", options.file.c_str(), matched,
              total_lines);
  if (matched == 0) {
    if (options.validate) std::printf("validation: OK\n");
    return 0;
  }
  std::printf("cycles %ld..%ld, %zu actors\n", min_cycle, max_cycle,
              actors.size());
  for (const auto& [cat, names] : by_cat_name) {
    long cat_total = 0;
    for (const auto& [name, count] : names) cat_total += count;
    std::printf("  %-12s %6ld\n", cat.c_str(), cat_total);
    for (const auto& [name, count] : names) {
      std::printf("    %-24s %6ld\n", name.c_str(), count);
    }
  }
  if (options.validate) std::printf("validation: OK\n");
  return 0;
}
