// Inspector for JSONL protocol traces (the --trace output of sgm_monitor,
// dst_stress and bench_reliability).
//
// Modes (combine filters with any mode):
//   trace_inspect FILE                     per-category/name event summary
//   trace_inspect --validate FILE          schema-check every line; exit 1
//                                          on the first invalid line
//   trace_inspect --chrome=OUT FILE        convert to Chrome trace_event
//                                          JSON (chrome://tracing, Perfetto)
//   trace_inspect --cat=C --name=N --actor=A --cycle-min=X --cycle-max=Y
//                                          print matching lines verbatim
//
// Filters apply to the summary and --chrome conversion too, so e.g.
//   trace_inspect --cat=failure --chrome=fail.json trace.jsonl
// produces a timeline of just the failure-detector lifecycle.

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace {

struct Options {
  std::string file;
  std::string chrome_out;
  bool validate = false;
  bool print_matches = false;  // set when any filter is given
  std::string cat;
  std::string name;
  int actor = INT_MIN;
  long cycle_min = LONG_MIN;
  long cycle_max = LONG_MAX;
};

bool ParseFlag(const std::string& arg, const char* flag, std::string* out) {
  const std::size_t len = std::strlen(flag);
  if (arg.rfind(flag, 0) != 0) return false;
  *out = arg.substr(len);
  return true;
}

/// Rebuilds a TraceEvent from one parsed JSONL line (already validated or
/// at least structurally JSON). Integral numbers round-trip as int args.
sgm::TraceEvent ToEvent(const sgm::JsonValue& value) {
  sgm::TraceEvent event;
  event.ts = static_cast<long>(value.NumberOr("ts", 0));
  event.cycle = static_cast<long>(value.NumberOr("cycle", 0));
  if (const sgm::JsonValue* cat = value.Find("cat")) {
    event.cat = cat->string_value();
  }
  if (const sgm::JsonValue* name = value.Find("name")) {
    event.name = name->string_value();
  }
  event.actor = static_cast<int>(value.NumberOr("actor", 0));
  if (const sgm::JsonValue* args = value.Find("args")) {
    for (const auto& [key, arg] : args->object()) {
      if (arg.is_string()) {
        event.args.emplace_back(key, arg.string_value());
      } else if (arg.is_number()) {
        const double number = arg.number_value();
        const auto as_int = static_cast<std::int64_t>(number);
        if (static_cast<double>(as_int) == number) {
          event.args.emplace_back(key, as_int);
        } else {
          event.args.emplace_back(key, number);
        }
      }
    }
  }
  return event;
}

bool Matches(const Options& options, const sgm::TraceEvent& event) {
  if (!options.cat.empty() && event.cat != options.cat) return false;
  if (!options.name.empty() && event.name != options.name) return false;
  if (options.actor != INT_MIN && event.actor != options.actor) return false;
  return event.cycle >= options.cycle_min && event.cycle <= options.cycle_max;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--validate") {
      options.validate = true;
    } else if (ParseFlag(arg, "--chrome=", &options.chrome_out)) {
    } else if (ParseFlag(arg, "--cat=", &options.cat)) {
      options.print_matches = true;
    } else if (ParseFlag(arg, "--name=", &options.name)) {
      options.print_matches = true;
    } else if (ParseFlag(arg, "--actor=", &value)) {
      options.actor = std::atoi(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycle-min=", &value)) {
      options.cycle_min = std::atol(value.c_str());
      options.print_matches = true;
    } else if (ParseFlag(arg, "--cycle-max=", &value)) {
      options.cycle_max = std::atol(value.c_str());
      options.print_matches = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (options.file.empty()) {
      options.file = arg;
    } else {
      std::fprintf(stderr, "multiple input files given\n");
      return 2;
    }
  }
  if (options.file.empty()) {
    std::fprintf(stderr,
                 "usage: trace_inspect [--validate] [--chrome=OUT]"
                 " [--cat=C] [--name=N] [--actor=A]"
                 " [--cycle-min=X] [--cycle-max=Y] FILE\n");
    return 2;
  }

  std::ifstream in(options.file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", options.file.c_str());
    return 1;
  }

  // Single pass: validate (optionally), parse, filter, accumulate.
  std::vector<sgm::TraceEvent> events;
  std::map<std::string, std::map<std::string, long>> by_cat_name;
  std::set<int> actors;
  long line_number = 0;
  long total_lines = 0;
  long min_cycle = LONG_MAX;
  long max_cycle = LONG_MIN;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++total_lines;
    if (options.validate) {
      std::string error;
      if (!sgm::ValidateTraceJsonLine(line, &error)) {
        std::fprintf(stderr, "%s:%ld: invalid event: %s\n",
                     options.file.c_str(), line_number, error.c_str());
        return 1;
      }
    }
    auto parsed = sgm::JsonValue::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s:%ld: not JSON: %s\n", options.file.c_str(),
                   line_number, parsed.status().message().c_str());
      return 1;
    }
    sgm::TraceEvent event = ToEvent(parsed.ValueOrDie());
    if (!Matches(options, event)) continue;
    by_cat_name[event.cat][event.name] += 1;
    actors.insert(event.actor);
    min_cycle = std::min(min_cycle, event.cycle);
    max_cycle = std::max(max_cycle, event.cycle);
    if (options.print_matches && options.chrome_out.empty()) {
      std::printf("%s\n", line.c_str());
    }
    if (!options.chrome_out.empty()) {
      events.push_back(std::move(event));
    }
  }

  if (!options.chrome_out.empty()) {
    // Replay the (filtered) events through a fresh log so WriteChromeTrace
    // handles the formatting; Emit re-stamps ts sequentially, preserving
    // the original order on the chrome timeline.
    sgm::TraceLog log;
    std::ofstream out(options.chrome_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", options.chrome_out.c_str());
      return 1;
    }
    for (sgm::TraceEvent& event : events) {
      log.SetCycle(event.cycle);
      log.Emit(event.cat, event.name, event.actor, std::move(event.args));
    }
    log.WriteChromeTrace(out);
    std::printf("wrote %zu events to %s\n", events.size(),
                options.chrome_out.c_str());
    return 0;
  }

  if (options.print_matches) return 0;

  // Summary mode.
  long matched = 0;
  for (const auto& [cat, names] : by_cat_name) {
    for (const auto& [name, count] : names) matched += count;
  }
  std::printf("%s: %ld events (%ld lines)\n", options.file.c_str(), matched,
              total_lines);
  if (matched == 0) {
    if (options.validate) std::printf("validation: OK\n");
    return 0;
  }
  std::printf("cycles %ld..%ld, %zu actors\n", min_cycle, max_cycle,
              actors.size());
  for (const auto& [cat, names] : by_cat_name) {
    long cat_total = 0;
    for (const auto& [name, count] : names) cat_total += count;
    std::printf("  %-12s %6ld\n", cat.c_str(), cat_total);
    for (const auto& [name, count] : names) {
      std::printf("    %-24s %6ld\n", name.c_str(), count);
    }
  }
  if (options.validate) std::printf("validation: OK\n");
  return 0;
}
